"""Automated paper-vs-measured summary (the EXPERIMENTS.md core table).

``python -m repro summary`` regenerates the whole evaluation and emits
one table pairing every headline number the paper states with the value
this repository measures — the at-a-glance answer to "how close is the
reproduction?".  The figures' full per-kernel tables remain the
individual experiments' job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..transforms.pipeline import OptLevel
from .report import FigureResult
from .runner import ExperimentRunner


@dataclass(frozen=True)
class SummaryRow:
    """One paper-vs-measured pairing.

    Attributes
    ----------
    experiment : str
        Source table/figure.
    quantity : str
        What is being compared.
    paper : float or None
        The paper's stated value (``None`` when only qualitative).
    measured : float
        This repository's value.
    unit : str
        Unit of both columns.
    """

    experiment: str
    quantity: str
    paper: Optional[float]
    measured: float
    unit: str = "%"


def build_summary(runner: Optional[ExperimentRunner] = None) -> List[SummaryRow]:
    """Run the evaluation grid and assemble the summary rows."""
    runner = runner or ExperimentRunner()

    def avg(values):
        return sum(values) / len(values)

    dropin = runner.penalties("dropin", OptLevel.NONE)
    vwb = runner.penalties("vwb", OptLevel.NONE)
    vwb_opt = runner.penalties("vwb", OptLevel.FULL)
    dropin_opt = runner.penalties("dropin", OptLevel.FULL)
    l0_opt = runner.penalties("l0", OptLevel.FULL)
    emshr_opt = runner.penalties("emshr", OptLevel.FULL)

    rows = [
        SummaryRow("fig1", "drop-in penalty, average", 54.0, avg(dropin)),
        SummaryRow("fig1", "drop-in penalty, maximum", 55.0, max(dropin)),
        SummaryRow("fig3", "VWB-only penalty, average", None, avg(vwb)),
        SummaryRow("fig5", "optimized penalty, average", 8.0, avg(vwb_opt)),
        SummaryRow("fig5", "optimized penalty, worst case", 8.0, max(vwb_opt)),
    ]

    vwb_red = avg(dropin_opt) - avg(vwb_opt)
    rivals_red = avg(dropin_opt) - (avg(l0_opt) + avg(emshr_opt)) / 2.0
    rows.append(
        SummaryRow(
            "fig8",
            "reduction ratio vs rivals' average",
            2.0,
            vwb_red / max(1e-9, rivals_red),
            unit="x",
        )
    )

    edges = []
    for kernel in runner.kernels:
        sram_f = runner.run("sram", kernel, OptLevel.FULL).cycles
        vwb_f = runner.run("vwb", kernel, OptLevel.FULL).cycles
        edges.append((vwb_f - sram_f) / sram_f * 100.0)
    rows.append(SummaryRow("fig9", "optimized SRAM edge over proposal", 8.0, avg(edges)))

    from . import fig4, fig7

    rows.append(
        SummaryRow(
            "fig4", "read share of the penalty", None, fig4.run(runner).averages()["read_share"]
        )
    )
    f7 = fig7.run(runner).averages()
    rows.append(SummaryRow("fig7", "penalty at 1 Kbit VWB", None, f7["vwb_1kbit"]))
    rows.append(SummaryRow("fig7", "penalty at 2 Kbit VWB", None, f7["vwb_2kbit"]))
    rows.append(SummaryRow("fig7", "penalty at 4 Kbit VWB", None, f7["vwb_4kbit"]))

    # Down-hierarchy behaviour of the proposal (no paper counterpart —
    # the paper only reports total cycles, but these counters explain
    # them: an L1 organisation can only shift penalty it does not push
    # into L2/DRAM traffic).
    l2_mpki, dram_busy = [], []
    for kernel in runner.kernels:
        res = runner.run("vwb", kernel, OptLevel.NONE)
        l2 = res.l2_stats
        l2_mpki.append(
            (l2.get("read_misses", 0) + l2.get("write_misses", 0))
            / res.instructions
            * 1000.0
        )
        busy = res.mainmem_stats.get("channel_busy_cycles", 0.0)
        dram_busy.append(busy / res.cycles * 100.0)
    rows.append(SummaryRow("memory", "L2 MPKI under VWB, average", None, avg(l2_mpki), unit=""))
    rows.append(
        SummaryRow("memory", "DRAM channel busy under VWB, average", None, avg(dram_busy))
    )
    return rows


def render_summary(rows: List[SummaryRow]) -> str:
    """Aligned text table of the summary rows."""
    header = f"{'experiment':<12}{'quantity':<38}{'paper':>10}{'measured':>10}"
    lines = [header, "-" * len(header)]
    for row in rows:
        paper = f"{row.paper:.1f}{row.unit}" if row.paper is not None else "n/a"
        lines.append(
            f"{row.experiment:<12}{row.quantity:<38}{paper:>10}"
            f"{row.measured:>9.1f}{row.unit}"
        )
    return "\n".join(lines)


def run(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Experiment-registry adapter for the summary."""
    rows = build_summary(runner)
    return FigureResult(
        name="summary",
        title="Paper vs measured, headline quantities",
        labels=[f"{r.experiment}: {r.quantity}" for r in rows],
        series={"measured": [r.measured for r in rows]},
        unit="mixed",
        notes=render_summary(rows).splitlines(),
        average_row=False,
    )
