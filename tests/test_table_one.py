"""Table I generator."""

from repro.tech.compare import build_table_one, render_table_one


class TestTableOne:
    def test_row_order_matches_paper(self):
        rows = build_table_one()
        first_six = [r.parameter for r in rows[:6]]
        assert first_six == [
            "Read Latency",
            "Write Latency",
            "Leakage",
            "Area",
            "Associativity",
            "Cache Line size",
        ]

    def test_paper_values_present(self):
        rendered = render_table_one(build_table_one())
        for value in ("0.787ns", "3.37ns", "0.773ns", "1.86ns", "146F^2", "42F^2", "28.35mW"):
            assert value in rendered

    def test_line_sizes(self):
        rows = {r.parameter: r for r in build_table_one()}
        assert rows["Cache Line size"].sram == "256 Bits"
        assert rows["Cache Line size"].stt_mram == "512 Bits"

    def test_cycle_rows(self):
        rows = {r.parameter: r for r in build_table_one()}
        assert rows["Read Latency (cycles @1GHz)"].sram == "1"
        assert rows["Read Latency (cycles @1GHz)"].stt_mram == "4"
        assert rows["Write Latency (cycles @1GHz)"].stt_mram == "2"

    def test_derived_ratios(self):
        rows = {r.parameter: r for r in build_table_one()}
        assert rows["Read ratio vs SRAM"].stt_mram == "4.28x"
        assert rows["Write ratio vs SRAM"].stt_mram == "2.41x"

    def test_area_ratio_under_one(self):
        rows = {r.parameter: r for r in build_table_one()}
        assert rows["Area ratio vs SRAM"].stt_mram == "0.29x"

    def test_render_is_aligned(self):
        lines = render_table_one(build_table_one()).splitlines()
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all data rows padded to equal width
