"""Benches: energy and endurance extensions.

The paper defers power models but claims the NVM DL1 "allows gains in
area and even energy"; Section II rules out ReRAM/PRAM on endurance.
"""

from repro.experiments import energy

from conftest import run_once


def test_energy(benchmark, runner, save):
    result = run_once(benchmark, energy.run, runner=runner)
    save(result)
    sram_total = sum(result.series_for("sram_nj"))
    nvm_total = sum(result.series_for("nvm_vwb_nj"))
    # Leakage dominates at these runtimes: the NVM DL1 must win overall.
    assert nvm_total < sram_total


def test_endurance(benchmark, runner, save):
    result = run_once(benchmark, energy.run_endurance, runner=runner)
    save(result)
    stt = result.series["STT-MRAM 32nm"]
    reram = result.series["ReRAM 32nm"]
    pram = result.series["PRAM 32nm"]
    # STT-MRAM sustains L1 write traffic for years (decades on most
    # kernels); ReRAM and PRAM wear out orders of magnitude sooner —
    # Section II's technology-choice argument.
    assert all(v > 1.0 for v in stt)
    assert sum(stt) / len(stt) > 10.0
    assert all(r < s / 1000 for r, s in zip(reram, stt))
    assert all(p < r for p, r in zip(pram, reram))
