"""Shared machinery for running kernels across platform configurations.

The paper's evaluation grid is (kernel) x (D-cache organisation) x
(optimization level).  :class:`ExperimentRunner` materialises each
kernel/level trace once, warms the L2 with the kernel's arrays (the
paper's gem5 runs execute PolyBench's initialisation before the measured
kernel), and caches results keyed by configuration so the figures share
baseline runs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..cpu.model import RunResult
from ..cpu.system import System, SystemConfig, warm_regions_of
from ..errors import ConfigurationError
from ..obs import ProfileResult, RecordingProbe
from ..reliability.faults import ReliabilityConfig
from ..transforms.pipeline import OptLevel, optimize
from ..workloads import build_kernel, kernel_names, materialize_trace
from ..workloads.datasets import DatasetSize
from ..workloads.interp import TraceConfig
from ..workloads.trace import TraceEvent

#: The named platform configurations of the evaluation (Section VI).
CONFIGURATIONS: Dict[str, SystemConfig] = {
    "sram": SystemConfig(technology="sram", frontend="plain"),
    "dropin": SystemConfig(technology="stt-mram", frontend="plain"),
    "vwb": SystemConfig(technology="stt-mram", frontend="vwb"),
    "l0": SystemConfig(technology="stt-mram", frontend="l0"),
    "emshr": SystemConfig(technology="stt-mram", frontend="emshr"),
    "hybrid": SystemConfig(technology="stt-mram", frontend="hybrid"),
}

#: Spelled-out aliases accepted anywhere a configuration name is
#: (``repro profile gemm --config nvm-vwb`` reads naturally).
CONFIG_ALIASES: Dict[str, str] = {
    "baseline": "sram",
    "nvm": "dropin",
    "nvm-dropin": "dropin",
    "nvm-vwb": "vwb",
    "nvm-l0": "l0",
    "nvm-emshr": "emshr",
    "nvm-hybrid": "hybrid",
}


def resolve_config_name(name: str) -> str:
    """Canonical configuration name for ``name`` (aliases resolved)."""
    name = name.strip().lower()
    name = CONFIG_ALIASES.get(name, name)
    if name not in CONFIGURATIONS:
        valid = ", ".join(list(CONFIGURATIONS) + sorted(CONFIG_ALIASES))
        raise ConfigurationError(
            f"unknown configuration {name!r}; expected one of: {valid}"
        )
    return name


def make_system(name_or_config) -> System:
    """Build a :class:`System` from a configuration name or object."""
    if isinstance(name_or_config, SystemConfig):
        return System(name_or_config)
    return System(CONFIGURATIONS[resolve_config_name(name_or_config)])


class ExperimentRunner:
    """Caches traces and run results across the experiment suite.

    Args:
        size: Dataset size class for every kernel (MINI reproduces the
            paper; larger sizes feed the dataset-scaling ablation).
        kernels: Kernel subset to evaluate (default: the full 12-kernel
            registry, in figure order).
    """

    def __init__(
        self,
        size: DatasetSize = DatasetSize.MINI,
        kernels: Optional[List[str]] = None,
    ) -> None:
        self.size = size
        self.kernels = list(kernels) if kernels is not None else kernel_names()
        self._programs: Dict[Tuple[str, OptLevel], object] = {}
        self._traces: Dict[Tuple[str, OptLevel], List[TraceEvent]] = {}
        self._annotated_traces: Dict[Tuple[str, OptLevel], List[TraceEvent]] = {}
        self._results: Dict[Tuple, RunResult] = {}

    # ------------------------------------------------------------------
    # Workload material
    # ------------------------------------------------------------------

    def program(self, kernel: str, level: OptLevel = OptLevel.NONE):
        """The (possibly transformed) program for a kernel, cached."""
        key = (kernel, level)
        if key not in self._programs:
            base = build_kernel(kernel, self.size)
            self._programs[key] = optimize(base, level) if level is not OptLevel.NONE else base
        return self._programs[key]

    def trace(self, kernel: str, level: OptLevel = OptLevel.NONE) -> List[TraceEvent]:
        """The materialised event trace for a kernel/level, cached."""
        key = (kernel, level)
        if key not in self._traces:
            self._traces[key] = materialize_trace(self.program(kernel, level))
        return self._traces[key]

    def annotated_trace(self, kernel: str, level: OptLevel = OptLevel.NONE) -> List[TraceEvent]:
        """Trace with zero-cost IR loop marks, for profiling runs.

        Cached separately from :meth:`trace` so figure runs keep using
        the seed's mark-free traces.
        """
        key = (kernel, level)
        if key not in self._annotated_traces:
            self._annotated_traces[key] = materialize_trace(
                self.program(kernel, level), TraceConfig(annotate_ir=True)
            )
        return self._annotated_traces[key]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        config,
        kernel: str,
        level: OptLevel = OptLevel.NONE,
        cache_key: Optional[str] = None,
    ) -> RunResult:
        """Run one kernel/level on one configuration (L2 pre-warmed).

        Args:
            config: A configuration name from :data:`CONFIGURATIONS` or a
                :class:`SystemConfig`.
            kernel: Kernel name.
            level: Optimization level of the code.
            cache_key: Override for the result-cache key when passing ad
                hoc :class:`SystemConfig` objects (named configs cache
                automatically; unnamed ones are cached by this key or not
                at all).
        """
        if isinstance(config, str):
            key = (config, kernel, level, self.size)
        elif cache_key is not None:
            key = (cache_key, kernel, level, self.size)
        else:
            key = None
        if key is not None and key in self._results:
            return self._results[key]
        system = make_system(config)
        trace = self.trace(kernel, level)
        regions = warm_regions_of(self.program(kernel, level))
        result = system.run(trace, warm_regions=regions)
        if key is not None:
            self._results[key] = result
        return result

    def profile(
        self,
        kernel: str,
        config: str = "vwb",
        level: OptLevel = OptLevel.NONE,
        record_events: bool = True,
        max_events: int = 200_000,
    ) -> ProfileResult:
        """Run one kernel under a :class:`RecordingProbe` and package it.

        The run uses an IR-annotated trace (same cycle count as the plain
        trace — marks are zero-cost) so the ledger carries per-IR-loop
        subtotals, and verifies ledger exactness against the run's cycle
        count before returning.

        Args:
            kernel: Kernel name.
            config: Configuration name or alias (e.g. ``"nvm-vwb"``).
            level: Optimization level of the code.
            record_events: Keep the per-event timeline for trace export
                (ledger/histograms are always collected).
            max_events: Cap on retained timeline events; overflow is
                counted in :attr:`ProfileResult.dropped_events`.
        """
        name = resolve_config_name(config)
        system = make_system(name)
        probe = RecordingProbe(record_events=record_events, max_events=max_events)
        result = system.run(
            self.annotated_trace(kernel, level),
            warm_regions=warm_regions_of(self.program(kernel, level)),
            probe=probe,
        )
        return ProfileResult(
            kernel=kernel,
            config=name,
            level=level.name,
            result=result,
            ledger=probe.ledger,
            histograms=probe.histograms,
            events=probe.events,
            dropped_events=probe.dropped_events,
        )

    def penalty(
        self,
        config,
        kernel: str,
        level: OptLevel = OptLevel.NONE,
        baseline_level: Optional[OptLevel] = None,
        cache_key: Optional[str] = None,
    ) -> float:
        """Penalty (%) of a configuration against the SRAM baseline.

        The baseline runs the same code by default (``baseline_level``
        overrides this for gain-style comparisons).
        """
        base_level = level if baseline_level is None else baseline_level
        baseline = self.run("sram", kernel, base_level)
        return self.run(config, kernel, level, cache_key=cache_key).penalty_vs(baseline)

    def penalties(
        self,
        config,
        level: OptLevel = OptLevel.NONE,
        baseline_level: Optional[OptLevel] = None,
        cache_key: Optional[str] = None,
    ) -> List[float]:
        """Per-kernel penalties over the runner's kernel list."""
        return [
            self.penalty(config, k, level, baseline_level, cache_key=cache_key)
            for k in self.kernels
        ]

    def reliability_sweep(
        self,
        kernel: str,
        rates: Sequence[float],
        configs: Sequence[str] = ("dropin", "vwb"),
        seed: int = 0,
        level: OptLevel = OptLevel.NONE,
    ) -> Dict[str, List[float]]:
        """Penalty curves over a raw-bit-error-rate sweep.

        For each configuration, each point enables stochastic write
        faults at the given rber (with write-verify-retry, SECDED and
        line retirement at their defaults) and reports the penalty
        against the fault-free SRAM baseline — the Figure 5 metric, with
        reliability overhead added on top of the technology penalty.

        Args:
            kernel: Kernel name.
            rates: Raw per-bit write error rates to sweep.
            configs: Configuration names/aliases to compare.
            seed: Fault-injection seed shared by every point.
            level: Optimization level of the code.

        Returns:
            Mapping of canonical configuration name to per-rate
            penalties (%), in ``rates`` order.
        """
        curves: Dict[str, List[float]] = {}
        for config in configs:
            name = resolve_config_name(config)
            base = CONFIGURATIONS[name]
            points: List[float] = []
            for rate in rates:
                faulty = replace(
                    base,
                    reliability=ReliabilityConfig(seed=seed, write_error_rate=rate),
                )
                points.append(
                    self.penalty(
                        faulty,
                        kernel,
                        level,
                        cache_key=f"{name}+rber={rate:g}+seed={seed}",
                    )
                )
            curves[name] = points
        return curves
