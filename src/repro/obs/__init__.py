"""Observability layer: cycle-attribution probes, ledger, histograms.

``repro.obs`` answers the question every figure of the paper implicitly
argues about — *where do the cycles go?* — with hard numbers instead of
aggregate counters:

- :mod:`repro.obs.probe` defines the :class:`~repro.obs.probe.Probe`
  interface threaded through the CPU, every D-cache front-end and the
  whole memory substrate, plus the zero-overhead
  :class:`~repro.obs.probe.NullProbe` default and the
  :class:`~repro.obs.probe.RecordingProbe` used by ``repro profile``;
- :mod:`repro.obs.ledger` holds the :class:`~repro.obs.ledger.CycleLedger`
  that attributes every exposed CPU cycle to one category and checks the
  attribution is exact (totals equal ``RunResult.cycles``);
- :mod:`repro.obs.histograms` generalises the per-load latency histogram
  to every component of the hierarchy;
- :mod:`repro.obs.profile` bundles one instrumented run into a
  :class:`~repro.obs.profile.ProfileResult` for the exporters in
  :mod:`repro.experiments.export`;
- :mod:`repro.obs.perfetto` holds the shared Chrome trace-event
  serialization (:class:`~repro.obs.perfetto.TraceBuilder`) used by
  both the per-run profile exporter and the sweep timeline of
  :mod:`repro.telemetry`.
"""

from .histograms import LatencyHistograms
from .ledger import LEDGER_CATEGORIES, CycleLedger
from .perfetto import TraceBuilder, write_trace
from .probe import NULL_PROBE, NullProbe, Probe, ProbeEvent, RecordingProbe
from .profile import ProfileResult

__all__ = [
    "LEDGER_CATEGORIES",
    "CycleLedger",
    "LatencyHistograms",
    "NULL_PROBE",
    "NullProbe",
    "Probe",
    "ProbeEvent",
    "ProfileResult",
    "RecordingProbe",
    "TraceBuilder",
    "write_trace",
]
