"""Simulator sanitizer: invariant checking and differential replay audit.

``repro.check`` is the simulator's trust-but-verify layer.  It has two
modes, both opt-in and both free when off:

- the **live sanitizer** (:class:`Sanitizer`) interposes on the CPU's
  event stream and checks the representation invariants of every cache,
  buffer and queue between trace events, failing fast with an
  :class:`~repro.errors.InvariantViolation` that carries a replayable
  event index;
- the **differential auditor** (:func:`audit_point`,
  :func:`audit_grid`) replays the same run point through every replay
  path the simulator maintains (generic, encoded fast path, probed with
  ledger verification, warm re-run), diffs results, histograms and full
  shadow machine state (:func:`capture_system`), and bisects a
  generic-vs-encoded divergence to the first offending trace event
  (:func:`bisect_divergence`).

The CLI entry point is ``repro check``; experiment commands accept
``--check`` to run their serial path under the sanitizer.  See
``docs/ARCHITECTURE.md`` section 2.10 for the invariant catalogue and
the overhead contract.
"""

from .audit import (
    DEFAULT_AUDIT_STRIDE,
    AuditReport,
    audit_grid,
    audit_point,
    bisect_divergence,
)
from .invariants import (
    check_cache,
    check_frontend,
    check_store_queue,
    check_system,
    check_wide_buffer,
)
from .sanitizer import Sanitizer
from .shadow import ShadowState, capture_cache, capture_frontend, capture_system, diff_states

__all__ = [
    "AuditReport",
    "DEFAULT_AUDIT_STRIDE",
    "Sanitizer",
    "ShadowState",
    "audit_grid",
    "audit_point",
    "bisect_divergence",
    "capture_cache",
    "capture_frontend",
    "capture_system",
    "check_cache",
    "check_frontend",
    "check_store_queue",
    "check_system",
    "check_wide_buffer",
    "diff_states",
]
