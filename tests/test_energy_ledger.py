"""Energy ledger accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.tech.array_model import ArrayGeometry, estimate_array
from repro.tech.energy import EnergyLedger
from repro.tech.params import SRAM_32NM_HP, STT_MRAM_32NM
from repro.units import kib


@pytest.fixture
def estimate():
    return estimate_array(STT_MRAM_32NM, ArrayGeometry(capacity_bytes=kib(64), associativity=2))


class TestLedger:
    def test_dynamic_energy_counts_reads(self, estimate):
        ledger = EnergyLedger()
        ledger.register("dl1", estimate)
        ledger.count_read("dl1", 1000)
        report = ledger.report(elapsed_ns=0.0)
        assert report.dynamic_nj == pytest.approx(1000 * estimate.read_energy_pj / 1e3)

    def test_dynamic_energy_counts_writes(self, estimate):
        ledger = EnergyLedger()
        ledger.register("dl1", estimate)
        ledger.count_write("dl1", 10)
        report = ledger.report(elapsed_ns=0.0)
        assert report.dynamic_nj == pytest.approx(10 * estimate.write_energy_pj / 1e3)

    def test_leakage_integrates_over_time(self, estimate):
        ledger = EnergyLedger()
        ledger.register("dl1", estimate)
        report = ledger.report(elapsed_ns=1e6)  # 1 ms
        # mW * ns * 1e-6 = nJ
        assert report.leakage_nj == pytest.approx(estimate.leakage_mw * 1e6 * 1e-6)

    def test_total_is_sum(self, estimate):
        ledger = EnergyLedger()
        ledger.register("dl1", estimate)
        ledger.count_read("dl1", 5)
        report = ledger.report(elapsed_ns=100.0)
        assert report.total_nj == pytest.approx(report.dynamic_nj + report.leakage_nj)

    def test_per_array_split(self, estimate):
        ledger = EnergyLedger()
        ledger.register("a", estimate)
        ledger.register("b", estimate)
        ledger.count_read("a", 10)
        report = ledger.report(elapsed_ns=0.0)
        assert report.per_array_nj["a"] > 0
        assert report.per_array_nj["b"] == 0

    def test_counts_accumulate(self, estimate):
        ledger = EnergyLedger()
        ledger.register("a", estimate)
        ledger.count_read("a")
        ledger.count_read("a", 2)
        assert ledger.reads("a") == 3

    def test_unregistered_array_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(ConfigurationError):
            ledger.count_read("ghost")

    def test_negative_time_rejected(self, estimate):
        ledger = EnergyLedger()
        ledger.register("a", estimate)
        with pytest.raises(ConfigurationError):
            ledger.report(elapsed_ns=-1.0)

    def test_reprice_keeps_counts(self, estimate):
        ledger = EnergyLedger()
        ledger.register("a", estimate)
        ledger.count_read("a", 7)
        sram = estimate_array(SRAM_32NM_HP, ArrayGeometry(capacity_bytes=kib(64), associativity=2))
        ledger.register("a", sram)
        assert ledger.reads("a") == 7

    def test_sram_leaks_more_than_stt_for_same_run(self, estimate):
        sram_est = estimate_array(
            SRAM_32NM_HP, ArrayGeometry(capacity_bytes=kib(64), associativity=2)
        )
        sram_ledger, stt_ledger = EnergyLedger(), EnergyLedger()
        sram_ledger.register("dl1", sram_est)
        stt_ledger.register("dl1", estimate)
        t = 1e5
        assert sram_ledger.report(t).leakage_nj > stt_ledger.report(t).leakage_nj
