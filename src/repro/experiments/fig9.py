"""Figure 9: code transformations also help the SRAM baseline.

Paper: "while the software transformations can positively affect the
baseline SRAM system (resulting in a better performance compared to our
proposal by 8%), it is more pronounced in case of our NVM based proposal
where the architecture and data allocation policy is tuned to exploit
these optimizations the most."
"""

from __future__ import annotations

from typing import Optional

from ..transforms.pipeline import OptLevel
from .report import FigureResult
from .runner import ExperimentRunner

#: Paper: optimized SRAM ends ~8% ahead of the optimized NVM proposal.
PAPER_SRAM_EDGE = 8.0


def run(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Per-kernel performance gain (%) from the full transformation set."""
    runner = runner or ExperimentRunner()
    sram_gain = []
    vwb_gain = []
    edges = []
    for kernel in runner.kernels:
        sram_before = runner.run("sram", kernel, OptLevel.NONE).cycles
        sram_after = runner.run("sram", kernel, OptLevel.FULL).cycles
        vwb_before = runner.run("vwb", kernel, OptLevel.NONE).cycles
        vwb_after = runner.run("vwb", kernel, OptLevel.FULL).cycles
        sram_gain.append((sram_before - sram_after) / sram_before * 100.0)
        vwb_gain.append((vwb_before - vwb_after) / vwb_before * 100.0)
        edges.append((vwb_after - sram_after) / sram_after * 100.0)
    avg_edge = sum(edges) / len(edges)
    return FigureResult(
        name="fig9",
        title="Effect of code transformations: SRAM baseline vs NVM proposal",
        labels=list(runner.kernels),
        series={"baseline_gain": sram_gain, "nvm_proposal_gain": vwb_gain},
        notes=[
            "paper: gains on both systems, larger on the NVM proposal; the "
            f"optimized SRAM system ends ~{PAPER_SRAM_EDGE:.0f}% ahead",
            f"measured: optimized SRAM ahead by {avg_edge:.1f}% on average; "
            f"gains {sum(sram_gain)/len(sram_gain):.1f}% (SRAM) vs "
            f"{sum(vwb_gain)/len(vwb_gain):.1f}% (NVM proposal)",
        ],
    )
