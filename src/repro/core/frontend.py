"""The pluggable D-cache front-end interface.

The paper evaluates four L1-D organisations on an otherwise identical
platform:

1. SRAM DL1 (baseline) — a plain cache;
2. drop-in STT-MRAM DL1 — the same plain cache with NVM latencies;
3. STT-MRAM DL1 + Very Wide Buffer — the proposal;
4. STT-MRAM DL1 + L0 filter cache / + Enhanced MSHR — prior art.

A *front-end* is what the CPU's load/store unit talks to.  It owns any
small buffer structure (VWB, L0, EMSHR buffer) and a backing
:class:`~repro.mem.cache.Cache` (the actual DL1 array).  All front-ends
share one timing contract: ``read``/``write`` take the absolute start
cycle and return the cycles the demand access needs; ``prefetch`` starts a
background promotion/fill and returns the issue-visible stall (normally
zero).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, fields

from ..mem.cache import Cache
from ..obs.probe import NULL_PROBE, Probe


@dataclass
class FrontendStats:
    """Counters specific to the front-end buffer structure.

    ``buffer_hits``/``buffer_misses`` count demand accesses served by the
    small structure (VWB, L0, or lingering MSHR entries) versus passed to
    the backing array.  Plain front-ends leave everything at zero except
    the pass-through counters.
    """

    buffer_read_hits: int = 0
    buffer_read_misses: int = 0
    buffer_write_hits: int = 0
    buffer_write_misses: int = 0
    promotions: int = 0
    promotion_cycles: int = 0
    buffer_writebacks: int = 0
    prefetches_issued: int = 0
    prefetches_useless: int = 0

    @property
    def buffer_hits(self) -> int:
        """Demand hits in the front-end buffer."""
        return self.buffer_read_hits + self.buffer_write_hits

    @property
    def buffer_accesses(self) -> int:
        """Demand accesses seen by the front-end buffer."""
        return (
            self.buffer_read_hits
            + self.buffer_read_misses
            + self.buffer_write_hits
            + self.buffer_write_misses
        )

    @property
    def buffer_hit_rate(self) -> float:
        """Fraction of demand accesses served by the buffer."""
        total = self.buffer_accesses
        return self.buffer_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """Plain-dict view of the raw counters."""
        return {f.name: getattr(self, f.name) for f in fields(FrontendStats)}


class DCacheFrontend(abc.ABC):
    """Interface between the load/store unit and the L1-D organisation."""

    #: Short name used in reports (e.g. ``"vwb"``); subclasses override.
    name: str = "frontend"

    def __init__(self, backing: Cache) -> None:
        self.backing = backing
        self.stats = FrontendStats()
        self.probe: Probe = NULL_PROBE
        self._probing = False

    def set_probe(self, probe: Probe) -> None:
        """Attach an observability probe to the front-end and its backing
        cache.  Subclasses owning extra caches extend this."""
        self.probe = probe
        self._probing = probe.enabled
        self.backing.set_probe(probe)

    @abc.abstractmethod
    def read(self, addr: int, size: int, now: float) -> float:
        """Serve a demand load; return its latency in cycles."""

    @abc.abstractmethod
    def write(self, addr: int, size: int, now: float) -> float:
        """Serve a demand store; return the cycles until it is accepted."""

    @abc.abstractmethod
    def prefetch(self, addr: int, now: float) -> float:
        """Start a background promotion/fill of the data at ``addr``.

        Returns:
            Issue-visible stall in cycles (normally 0; the CPU model
            charges the instruction slot separately).
        """

    def reset(self) -> None:
        """Reset the front-end buffer, its statistics and the backing cache."""
        self.backing.reset()
        self.stats = FrontendStats()

    def clear_stats(self) -> None:
        """Zero statistics and *timing* state but keep buffer contents.

        Used when continuing a warm run whose clock restarts at zero:
        any absolute cycle timestamps held by the front-end (in-flight
        fills) must be discarded, but resident data stays resident.
        Subclasses with in-flight state extend this.
        """
        self.stats = FrontendStats()
        self.backing.clear_stats()
