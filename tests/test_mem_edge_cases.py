"""Memory substrate edge cases: MSHR pressure, tiny buffers, direct map."""

import pytest

from repro.mem.cache import Cache, CacheConfig
from repro.mem.mainmem import MainMemory
from repro.mem.request import Access, AccessType


def make_cache(**overrides):
    defaults = dict(
        name="e",
        capacity_bytes=1024,
        associativity=1,
        line_bytes=64,
        read_hit_cycles=1,
        write_hit_cycles=1,
    )
    defaults.update(overrides)
    return Cache(CacheConfig(**defaults), MainMemory(latency_cycles=50.0, transfer_cycles=0.0))


class TestDirectMapped:
    def test_conflict_misses(self):
        cache = make_cache(associativity=1)  # 16 sets
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        cache.access(Access(1024, 4, AccessType.READ), 200.0)  # same set
        cache.access(Access(0, 4, AccessType.READ), 400.0)
        assert cache.stats.read_misses == 3

    def test_fully_associative(self):
        cache = make_cache(associativity=16, capacity_bytes=1024)  # 1 set
        for n in range(16):
            cache.access(Access(n * 64, 4, AccessType.READ), n * 200.0)
        for n in range(16):
            cache.access(Access(n * 64, 4, AccessType.READ), 10000.0 + n * 10)
        assert cache.stats.read_hits == 16


class TestMSHRPressure:
    def test_prefetch_dropped_when_mshrs_full(self):
        cache = make_cache(mshr_entries=2, capacity_bytes=4096, associativity=2)
        mem_reads_before = cache.next_level.reads
        for n in range(4):
            cache.prefetch(n * 64, 0.0)
        # Only two fills were actually issued; the rest were dropped
        # without consuming next-level bandwidth.
        assert cache.next_level.reads - mem_reads_before == 2
        assert cache.mshrs.full_rejections == 2

    def test_dropped_prefetch_line_still_fetchable(self):
        cache = make_cache(mshr_entries=1, capacity_bytes=4096, associativity=2)
        cache.prefetch(0, 0.0)
        cache.prefetch(64, 0.0)  # dropped
        latency = cache.access(Access(64, 4, AccessType.READ), 1.0)
        assert latency > 50.0  # full demand miss
        assert cache.contains(64)

    def test_mshrs_reclaimed_after_completion(self):
        cache = make_cache(mshr_entries=1, capacity_bytes=4096, associativity=2)
        cache.prefetch(0, 0.0)
        cache.prefetch(64, 10000.0)  # first prefetch long done: reclaimed
        assert cache.mshrs.full_rejections == 0


class TestWriteBufferPressure:
    def test_writeback_storm_stalls(self):
        cache = make_cache(
            associativity=1,
            write_buffer_entries=1,
            write_buffer_drain_cycles=100.0,
        )
        # Dirty every set, then evict them all rapidly: the 1-deep write
        # buffer with slow drain must stall at least once.
        for n in range(16):
            cache.access(Access(n * 64, 4, AccessType.WRITE), float(n))
        t = 100.0
        for n in range(16):
            t += cache.access(Access(1024 + n * 64, 4, AccessType.READ), t)
        assert cache.stats.writeback_stall_cycles > 0

    def test_deep_buffer_absorbs_storm(self):
        cache = make_cache(
            associativity=1,
            write_buffer_entries=32,
            write_buffer_drain_cycles=1.0,
        )
        for n in range(16):
            cache.access(Access(n * 64, 4, AccessType.WRITE), float(n))
        t = 100.0
        for n in range(16):
            t += cache.access(Access(1024 + n * 64, 4, AccessType.READ), t)
        assert cache.stats.writeback_stall_cycles == 0


class TestWideReadEdges:
    def test_single_line_wide_read(self):
        cache = make_cache(capacity_bytes=4096, associativity=2, read_hit_cycles=4)
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        result = cache.read_lines_wide(0, 1, 1000.0)
        assert result.latency == 4.0

    def test_wide_read_wider_than_banks(self):
        cache = make_cache(
            capacity_bytes=4096, associativity=2, read_hit_cycles=4, banks=2
        )
        for n in range(4):
            cache.access(Access(n * 64, 4, AccessType.READ), n * 500.0)
        result = cache.read_lines_wide(0, 4, 10000.0)
        # 4 lines over 2 banks: two serialized reads per bank.
        assert result.latency == 8.0

    def test_wide_read_mixed_hit_miss(self):
        cache = make_cache(capacity_bytes=4096, associativity=2, read_hit_cycles=4, banks=4)
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        result = cache.read_lines_wide(0, 2, 1000.0)
        assert cache.contains(64)
        # The resident line is read immediately; the missing one waits
        # for the next level.
        assert result.line_ready[0] < result.line_ready[64]

    def test_wide_read_consumes_lingering_prefetch(self):
        cache = make_cache(capacity_bytes=4096, associativity=2, read_hit_cycles=4, banks=4)
        cache.prefetch(0, 0.0)
        result = cache.read_lines_wide(0, 1, 10000.0)
        # Lazy fill write (1 cycle, same bank) then the wide read.
        assert 4.0 <= result.latency <= 5.0
        assert cache.contains(0)


class TestFullLineAccesses:
    def test_full_line_write(self):
        cache = make_cache()
        cache.access(Access(0, 64, AccessType.WRITE), 0.0)
        assert cache.is_dirty(0)
        assert cache.stats.write_misses == 1

    def test_exact_two_line_access(self):
        cache = make_cache()
        latency = cache.access(Access(0, 128, AccessType.READ), 0.0)
        assert cache.stats.read_misses == 2
        assert latency > 100.0  # two serialized demand misses
