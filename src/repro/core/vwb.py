"""The Very Wide Buffer (VWB) structure.

Section IV of the paper: "The VWB is made of single ported cells ... a
post-decode circuit consisting of a multiplexer is provided to select the
appropriate word(s) ... The interface of this register file organization
is asymmetric: wide towards the memory and narrower towards the datapath
... It is made up of two lines of single ported cells ... Each VWB line
has an associated tag."

Mapping to the model:

- the VWB holds ``n_lines`` (2 in the paper) *wide lines*;
- each wide line covers ``line_bits`` of consecutive, aligned memory — a
  *window* spanning ``window_bytes / cache_line_bytes`` DL1 lines (the
  paper's default: 2 Kbit VWB = two 1 Kbit lines, each covering two 512-bit
  DL1 lines);
- lookup is fully associative over the (few) wide-line tags;
- datapath reads/writes hit in one cycle through the MUX network;
- replacement between the wide lines is LRU;
- a dirty evicted wide line is written back to the NVM DL1.

The structure is purely state + bookkeeping; promotion timing lives in
:class:`repro.core.vwb_frontend.VWBFrontend`, which owns the interaction
with the banked NVM array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError
from ..units import bits_to_bytes, is_power_of_two


@dataclass(frozen=True)
class VWBConfig:
    """Geometry of a Very Wide Buffer.

    Attributes:
        total_bits: Total VWB capacity (the paper sweeps 1/2/4 Kbit).
        n_lines: Number of wide lines (the paper fixes 2).
        cache_line_bytes: DL1 line size the wide lines are built from.
        hit_cycles: Datapath access time of the register-file cells.
    """

    total_bits: int = 2048
    n_lines: int = 2
    cache_line_bytes: int = 64
    hit_cycles: int = 1

    def __post_init__(self) -> None:
        if self.n_lines <= 0:
            raise ConfigurationError(f"VWB needs at least one line: {self.n_lines}")
        if self.total_bits % self.n_lines != 0:
            raise ConfigurationError(
                f"VWB capacity {self.total_bits} bits not divisible by {self.n_lines} lines"
            )
        window = bits_to_bytes(self.total_bits // self.n_lines)
        if window < self.cache_line_bytes:
            raise ConfigurationError(
                f"VWB line ({window} B) must cover at least one cache line "
                f"({self.cache_line_bytes} B)"
            )
        if window % self.cache_line_bytes != 0:
            raise ConfigurationError(
                f"VWB line ({window} B) must be a whole number of cache lines"
            )
        if not is_power_of_two(window):
            raise ConfigurationError(f"VWB window must be a power of two: {window} B")
        if self.hit_cycles < 1:
            raise ConfigurationError("VWB hit latency must be at least 1 cycle")

    @property
    def window_bytes(self) -> int:
        """Bytes of memory covered by one wide line."""
        return bits_to_bytes(self.total_bits // self.n_lines)

    @property
    def lines_per_window(self) -> int:
        """DL1 cache lines covered by one wide line."""
        return self.window_bytes // self.cache_line_bytes


@dataclass
class _WideLine:
    """State of one VWB wide line."""

    window_addr: Optional[int] = None
    dirty: bool = False
    last_touch: int = 0


@dataclass(frozen=True)
class EvictedWindow:
    """Description of a wide line displaced by an allocation."""

    window_addr: int
    dirty: bool


class VeryWideBuffer:
    """State and bookkeeping of the VWB's wide lines.

    All methods are O(``n_lines``), which is 2 in the paper — the paper
    notes that "a fully associative search also becomes a big problem with
    the increase in size of the VWB", which is why capacity is swept by
    widening lines rather than adding them.
    """

    def __init__(self, config: VWBConfig) -> None:
        self.config = config
        # The window size is consulted on every access; cache it as an
        # attribute so the hot paths skip the config property chain.
        self._window_bytes = config.window_bytes
        self._lines: List[_WideLine] = [_WideLine() for _ in range(config.n_lines)]
        self._clock = 0

    def window_addr(self, addr: int) -> int:
        """Aligned window base address covering ``addr``."""
        wb = self._window_bytes
        return (addr // wb) * wb

    def lookup(self, addr: int) -> Optional[int]:
        """Index of the wide line holding ``addr``, or ``None``.

        Does not update recency; use :meth:`touch` on an actual access.
        """
        wb = self._window_bytes
        window = (addr // wb) * wb
        for i, line in enumerate(self._lines):
            if line.window_addr == window:
                return i
        return None

    def contains(self, addr: int) -> bool:
        """True if ``addr`` falls inside a resident wide line."""
        return self.lookup(addr) is not None

    def touch(self, index: int, dirty: bool = False) -> None:
        """Record a datapath access to wide line ``index``."""
        self._clock += 1
        line = self._lines[index]
        line.last_touch = self._clock
        if dirty:
            line.dirty = True

    def allocate(self, addr: int) -> Optional[EvictedWindow]:
        """Install the window covering ``addr``, evicting the LRU line.

        Returns:
            The displaced window (with its dirty state) if a valid line
            was evicted, else ``None``.  The caller is responsible for
            writing a dirty evicted window back to the NVM DL1.
        """
        window = self.window_addr(addr)
        existing = self.lookup(addr)
        if existing is not None:
            self.touch(existing)
            return None
        # First invalid line, else least recently touched (first on ties).
        victim_index = 0
        best_key = None
        for i, line in enumerate(self._lines):
            key = (1, line.last_touch) if line.window_addr is not None else (0, 0)
            if best_key is None or key < best_key:
                victim_index = i
                best_key = key
        victim = self._lines[victim_index]
        evicted = None
        if victim.window_addr is not None:
            evicted = EvictedWindow(window_addr=victim.window_addr, dirty=victim.dirty)
        victim.window_addr = window
        victim.dirty = False
        self.touch(victim_index)
        return evicted

    def invalidate(self, addr: int) -> Optional[EvictedWindow]:
        """Drop the wide line covering ``addr`` (if resident).

        Returns:
            The dropped window with its dirty state, or ``None``.
        """
        index = self.lookup(addr)
        if index is None:
            return None
        line = self._lines[index]
        dropped = EvictedWindow(window_addr=line.window_addr, dirty=line.dirty)
        line.window_addr = None
        line.dirty = False
        # An invalid line must look exactly like a never-used one: a
        # stale recency stamp would survive into the line's next life and
        # corrupt the LRU ordering reported by `_sort_key` (invalid lines
        # key as ``(0, 0)``, so victim selection itself never consulted
        # the stale stamp — pinned by ``tests/test_vwb.py``).
        line.last_touch = 0
        return dropped

    @property
    def resident_windows(self) -> List[int]:
        """Base addresses of all valid wide lines (unspecified order)."""
        return [l.window_addr for l in self._lines if l.window_addr is not None]

    def is_dirty(self, addr: int) -> bool:
        """True if the wide line covering ``addr`` is resident and dirty."""
        index = self.lookup(addr)
        return index is not None and self._lines[index].dirty

    def reset(self) -> None:
        """Invalidate all wide lines."""
        self._lines = [_WideLine() for _ in range(self.config.n_lines)]
        self._clock = 0

    def _sort_key(self, index: int) -> tuple:
        # Prefer invalid lines (key 0), then least recently touched.
        line = self._lines[index]
        return (1, line.last_touch) if line.window_addr is not None else (0, 0)
