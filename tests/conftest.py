"""Shared fixtures for the test suite.

The heavier fixtures (kernel traces, experiment runners) are module- or
session-scoped so the suite stays fast: traces are generated once and
reused across the tests that consume them.
"""

from __future__ import annotations

import pytest

from repro.cpu.system import System, SystemConfig
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mainmem import MainMemory
from repro.transforms.pipeline import OptLevel, optimize
from repro.workloads import build_kernel, materialize_trace


@pytest.fixture
def memory() -> MainMemory:
    """A fresh DRAM model."""
    return MainMemory(latency_cycles=100.0, transfer_cycles=8.0)


@pytest.fixture
def small_cache(memory) -> Cache:
    """A tiny 1 KB, 2-way, 64 B-line cache over DRAM — 8 sets."""
    config = CacheConfig(
        name="test",
        capacity_bytes=1024,
        associativity=2,
        line_bytes=64,
        read_hit_cycles=1,
        write_hit_cycles=1,
    )
    return Cache(config, memory)


@pytest.fixture
def nvm_cache(memory) -> Cache:
    """A small NVM-latency cache (read 4 / write 2), 4 banks."""
    config = CacheConfig(
        name="nvm",
        capacity_bytes=4096,
        associativity=2,
        line_bytes=64,
        read_hit_cycles=4,
        write_hit_cycles=2,
        banks=4,
    )
    return Cache(config, memory)


@pytest.fixture(scope="session")
def gemm_trace():
    """The unoptimized gemm trace (session-cached)."""
    return materialize_trace(build_kernel("gemm"))


@pytest.fixture(scope="session")
def gemm_opt_trace():
    """The fully optimized gemm trace (session-cached)."""
    return materialize_trace(optimize(build_kernel("gemm"), OptLevel.FULL))


@pytest.fixture
def sram_system() -> System:
    """The SRAM baseline platform."""
    return System(SystemConfig(technology="sram"))


@pytest.fixture
def dropin_system() -> System:
    """The drop-in STT-MRAM platform."""
    return System(SystemConfig(technology="stt-mram"))


@pytest.fixture
def vwb_system() -> System:
    """The proposed STT-MRAM + VWB platform."""
    return System(SystemConfig(technology="stt-mram", frontend="vwb"))
