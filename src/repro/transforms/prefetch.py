"""Software-prefetch insertion (Section V).

"Here, we can pre-fetch critical data and loop arrays to the VWB manually
and hence reduce time taken to read it from the NVM."

For every innermost loop, each distinct *read stream* (a reference whose
address varies with the loop variable) receives a prefetch directive.
The look-ahead distance is chosen per stream so the hint lands roughly
``ahead_bytes`` in front of the demand pointer:

- a unit-stride 4-byte stream gets ``ahead_bytes/4`` iterations — one
  hint per buffer window, issued a full window early;
- a column-walking stream (stride >= the window) gets distance 1 — the
  very next iteration's window, the most a two-line VWB can stage.

Write-only streams are skipped: the VWB is non-allocating for stores.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import TransformError
from ..workloads.ir import Loop, Program, Ref
from .base import Transform


class InsertPrefetch(Transform):
    """Insert per-stream prefetch directives into innermost loops.

    Args:
        ahead_bytes: Target look-ahead in bytes (default: one 128-byte
            VWB window).
        max_streams: Upper bound on prefetched streams per loop, matching
            the hardware's fill-buffer budget.
    """

    name = "prefetch"

    def __init__(self, ahead_bytes: int = 128, max_streams: int = 6) -> None:
        if ahead_bytes <= 0:
            raise TransformError(f"look-ahead must be positive, got {ahead_bytes}")
        if max_streams <= 0:
            raise TransformError(f"stream budget must be positive, got {max_streams}")
        self.ahead_bytes = ahead_bytes
        self.max_streams = max_streams

    def apply_to(self, program: Program) -> None:
        for lp in self.innermost_loops(program):
            lp.prefetch = self._directives(lp)

    def _directives(self, lp: Loop) -> List[Tuple[Ref, int]]:
        directives: List[Tuple[Ref, int]] = []
        seen: set = set()
        for statement in lp.statements():
            for ref in statement.reads:
                stride = abs(ref.stride_bytes(lp.var))
                if stride == 0:
                    continue  # register-allocated; nothing to prefetch
                key = (id(ref.array), ref.indices)
                if key in seen:
                    continue
                seen.add(key)
                distance = max(1, self.ahead_bytes // stride)
                directives.append((ref, distance))
                if len(directives) >= self.max_streams:
                    return directives
        return directives
