"""Affine expressions, with hypothesis algebra properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.affine import Affine, Var

i, j, k = Var("i"), Var("j"), Var("k")


class TestVar:
    def test_equality_by_name(self):
        assert Var("i") == Var("i")
        assert Var("i") != Var("j")

    def test_hashable(self):
        assert len({Var("i"), Var("i"), Var("j")}) == 2

    def test_requires_name(self):
        with pytest.raises(WorkloadError):
            Var("")


class TestConstruction:
    def test_var_plus_int(self):
        expr = i + 3
        assert expr.coefficient(i) == 1
        assert expr.const == 3

    def test_scalar_multiply(self):
        expr = 2 * i
        assert expr.coefficient(i) == 2

    def test_mixed(self):
        expr = 2 * i + j - 5
        assert expr.coefficient(i) == 2
        assert expr.coefficient(j) == 1
        assert expr.const == -5

    def test_rsub(self):
        expr = 10 - i
        assert expr.coefficient(i) == -1
        assert expr.const == 10

    def test_negation(self):
        expr = -(i + 1)
        assert expr.coefficient(i) == -1
        assert expr.const == -1

    def test_zero_coefficients_dropped(self):
        expr = i - i + 4
        assert expr.is_constant
        assert expr.const == 4

    def test_of_coercion(self):
        assert Affine.of(5).const == 5
        assert Affine.of(i).coefficient(i) == 1
        expr = i + 1
        assert Affine.of(expr) is expr

    def test_of_rejects_junk(self):
        with pytest.raises(WorkloadError):
            Affine.of("x")

    def test_non_integer_scale_rejected(self):
        with pytest.raises(WorkloadError):
            (i + 1) * 1.5


class TestEvaluate:
    def test_evaluate(self):
        expr = 2 * i + j + 3
        assert expr.evaluate({"i": 4, "j": 5}) == 16

    def test_unbound_variable(self):
        with pytest.raises(WorkloadError, match="i"):
            (i + 1).evaluate({})

    def test_variables(self):
        assert (i + j).variables() == frozenset({i, j})
        assert Affine.of(7).variables() == frozenset()

    def test_equality_and_hash(self):
        assert (i + 1) == (1 + i)
        assert hash(i + 1) == hash(1 + i)
        assert (i + 1) != (i + 2)

    def test_repr_readable(self):
        assert "i" in repr(2 * i + 1)


_envs = st.fixed_dictionaries({"i": st.integers(-50, 50), "j": st.integers(-50, 50)})
_exprs = st.builds(
    lambda a, b, c: a * i + b * j + c,
    st.integers(-5, 5),
    st.integers(-5, 5),
    st.integers(-100, 100),
)


class TestAlgebraProperties:
    @given(_exprs, _exprs, _envs)
    @settings(max_examples=50, deadline=None)
    def test_addition_is_pointwise(self, e1, e2, env):
        assert (e1 + e2).evaluate(env) == e1.evaluate(env) + e2.evaluate(env)

    @given(_exprs, _exprs, _envs)
    @settings(max_examples=50, deadline=None)
    def test_subtraction_is_pointwise(self, e1, e2, env):
        assert (e1 - e2).evaluate(env) == e1.evaluate(env) - e2.evaluate(env)

    @given(_exprs, st.integers(-7, 7), _envs)
    @settings(max_examples=50, deadline=None)
    def test_scaling_is_pointwise(self, e, factor, env):
        assert (e * factor).evaluate(env) == factor * e.evaluate(env)

    @given(_exprs, _exprs)
    @settings(max_examples=50, deadline=None)
    def test_addition_commutes(self, e1, e2):
        assert (e1 + e2) == (e2 + e1)
