"""Synthetic workload generators and their system-level behaviour."""

import pytest

from repro.cpu.system import System, SystemConfig
from repro.errors import WorkloadError
from repro.workloads import synthetic
from repro.workloads.trace import Branch, Load, Store, trace_summary


class TestGenerators:
    def test_streaming_addresses_sequential(self):
        events = synthetic.streaming(bytes_total=256, rounds=1, compute_per_access=0)
        loads = [ev.addr for ev in events if isinstance(ev, Load)]
        assert loads == sorted(loads)
        assert len(loads) == 64

    def test_streaming_rounds_repeat(self):
        events = synthetic.streaming(bytes_total=128, rounds=3, compute_per_access=0)
        loads = [ev.addr for ev in events if isinstance(ev, Load)]
        assert loads[:32] == loads[32:64] == loads[64:]

    def test_strided_stride(self):
        events = synthetic.strided(stride_bytes=512, accesses=8, compute_per_access=0)
        loads = [ev.addr for ev in events if isinstance(ev, Load)]
        assert all(b - a == 512 for a, b in zip(loads, loads[1:]))

    def test_random_access_deterministic(self):
        a = synthetic.random_access(seed=7)
        b = synthetic.random_access(seed=7)
        assert [type(x) for x in a] == [type(x) for x in b]
        assert all(
            not isinstance(x, (Load, Store)) or x.addr == y.addr for x, y in zip(a, b)
        )

    def test_random_access_seed_matters(self):
        a = [ev.addr for ev in synthetic.random_access(seed=1) if isinstance(ev, Load)]
        b = [ev.addr for ev in synthetic.random_access(seed=2) if isinstance(ev, Load)]
        assert a != b

    def test_pointer_chase_covers_all_lines_each_round(self):
        events = synthetic.pointer_chase(working_set_bytes=1024, rounds=2)
        loads = [ev.addr for ev in events if isinstance(ev, Load)]
        round_size = 1024 // 64
        assert sorted(loads[:round_size]) == list(
            range(synthetic.BASE_ADDR, synthetic.BASE_ADDR + 1024, 64)
        )
        assert loads[:round_size] == loads[round_size:]

    def test_pointer_chase_is_scrambled(self):
        events = synthetic.pointer_chase(working_set_bytes=4096, rounds=1)
        loads = [ev.addr for ev in events if isinstance(ev, Load)]
        assert loads != sorted(loads)

    def test_hot_cold_mix(self):
        events = synthetic.hot_cold(hot_bytes=256, accesses=2000, hot_probability=0.9, seed=3)
        touched = [ev.addr for ev in events if isinstance(ev, (Load, Store))]
        hot = sum(1 for a in touched if a < synthetic.BASE_ADDR + 256)
        assert 0.8 < hot / len(touched) < 0.97

    def test_write_mix(self):
        events = synthetic.streaming(bytes_total=256, rounds=1, write_every=4)
        summary = trace_summary(events)
        assert summary["stores"] == summary["loads"] // 3

    def test_last_branch_not_taken(self):
        events = synthetic.streaming(bytes_total=64, rounds=1)
        branches = [ev for ev in events if isinstance(ev, Branch)]
        assert branches[-1].taken is False
        assert all(b.taken for b in branches[:-1])

    @pytest.mark.parametrize(
        "call",
        [
            lambda: synthetic.streaming(bytes_total=0),
            lambda: synthetic.strided(stride_bytes=0),
            lambda: synthetic.random_access(accesses=0),
            lambda: synthetic.pointer_chase(working_set_bytes=4),
            lambda: synthetic.hot_cold(hot_probability=1.5),
        ],
    )
    def test_validation(self, call):
        with pytest.raises(WorkloadError):
            call()


class TestSystemBehaviour:
    def test_vwb_loves_streaming(self):
        events = synthetic.streaming(bytes_total=32768, rounds=2)
        dropin = System(SystemConfig(technology="stt-mram")).run(events)
        vwb = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(events)
        assert vwb.cycles < 0.8 * dropin.cycles

    def test_vwb_neutral_on_pointer_chase(self):
        """No spatial locality: the VWB can't help, but must not hurt
        beyond the wide read's own cost."""
        events = synthetic.pointer_chase(working_set_bytes=16384, rounds=3)
        dropin = System(SystemConfig(technology="stt-mram")).run(events)
        vwb = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(events)
        assert vwb.cycles < 1.3 * dropin.cycles

    def test_hot_set_cached_effectively(self):
        events = synthetic.hot_cold(hot_bytes=2048, accesses=4000, seed=5)
        result = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(events)
        # The 2 KB hot set fits anywhere; most accesses must be cheap.
        assert result.load_latency_quantile(0.5) <= 4.0

    def test_reuse_profile_of_pointer_chase(self):
        from repro.workloads.reuse import profile_reuse

        events = synthetic.pointer_chase(working_set_bytes=8192, rounds=2)
        profile = profile_reuse(events)
        lines = 8192 // 64
        # Second round re-touches every line at distance exactly lines-1.
        assert profile.histogram[lines - 1] == lines
