"""Table I: 64 KB SRAM vs 64 KB STT-MRAM L1 D-cache parameters."""

from __future__ import annotations

from typing import Optional

from ..tech.compare import build_table_one, render_table_one
from .report import FigureResult
from .runner import ExperimentRunner


def run(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Regenerate Table I (the runner argument is unused but keeps the
    experiment signature uniform)."""
    rows = build_table_one()
    # Encode the two technology columns as series over parameter labels;
    # non-numeric cells are carried in the notes via the rendered table.
    labels = [r.parameter for r in rows]
    notes = ["full table:"] + render_table_one(rows).splitlines()
    return FigureResult(
        name="table1",
        title="64KB SRAM L1 D-cache vs 64KB STT-MRAM L1 D-cache (32nm HP)",
        labels=labels,
        series={},
        unit="mixed",
        notes=notes,
        average_row=False,
    )
