"""Loop interchange on author-marked permutable nests (ablation extension).

The paper folds layout-motivated reordering into its manual
transformation story; this pass makes it explicit for the ablation
benches.  A loop marked ``permutable=True`` whose body is exactly one
nested loop may be swapped with that child; the pass does so when the
swap strictly improves innermost spatial locality (more unit-stride
references in the new innermost loop).
"""

from __future__ import annotations

from typing import List

from ..workloads.ir import Loop, Program
from .base import Transform


def _unit_stride_score(lp: Loop, var) -> int:
    """Number of unit-stride references the loop body has w.r.t. ``var``."""
    score = 0
    for statement in lp.statements():
        for ref in statement.refs:
            if ref.stride_elements(var) == 1:
                score += 1
    return score


class Interchange(Transform):
    """Swap permutable loop pairs to improve innermost unit-stride reuse."""

    name = "interchange"

    def apply_to(self, program: Program) -> None:
        for outer in program.loops():
            self._maybe_swap(outer)

    def _maybe_swap(self, outer: Loop) -> None:
        if not outer.permutable or len(outer.body) != 1:
            return
        inner = outer.body[0]
        if not isinstance(inner, Loop) or not inner.is_innermost:
            return
        # Interchange of a rectangular nest is legal when the author
        # marked the pair permutable and the bounds are independent.
        if outer.var in inner.lower.variables() or outer.var in inner.upper.variables():
            return
        if inner.var in outer.lower.variables() or inner.var in outer.upper.variables():
            return
        current = _unit_stride_score(inner, inner.var)
        swapped = _unit_stride_score(inner, outer.var)
        if swapped <= current:
            return
        # Perform the swap: exchange the loop variables and bounds while
        # keeping the body in place.
        outer.var, inner.var = inner.var, outer.var
        outer.lower, inner.lower = inner.lower, outer.lower
        outer.upper, inner.upper = inner.upper, outer.upper

    def swappable_pairs(self, program: Program) -> List[Loop]:
        """Outer loops this pass would consider (reporting helper)."""
        found = []
        for outer in program.loops():
            if outer.permutable and len(outer.body) == 1 and isinstance(outer.body[0], Loop):
                found.append(outer)
        return found
