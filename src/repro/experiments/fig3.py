"""Figure 3: the VWB cuts the drop-in penalty (no code transformations).

Paper: "Figure 3 shows the effect of our micro-architectural
modifications in reducing the penalty caused by NVM latency limitations.
Although the reduction in penalty is significant, it's not enough..."
"""

from __future__ import annotations

from typing import Optional

from ..transforms.pipeline import OptLevel
from .report import FigureResult
from .runner import ExperimentRunner


def run(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Drop-in vs NVM+VWB penalties, both on unoptimized code."""
    runner = runner or ExperimentRunner()
    dropin = runner.penalties("dropin", OptLevel.NONE)
    vwb = runner.penalties("vwb", OptLevel.NONE)
    reduction = sum(dropin) / len(dropin) - sum(vwb) / len(vwb)
    return FigureResult(
        name="fig3",
        title="NVM D-cache with VWB vs simple drop-in (SRAM baseline = 100%)",
        labels=list(runner.kernels),
        series={"dropin": dropin, "vwb": vwb},
        notes=[
            "paper: significant reduction from the VWB alone, but not enough",
            f"measured: average penalty {sum(dropin)/len(dropin):.1f}% -> "
            f"{sum(vwb)/len(vwb):.1f}% (reduction {reduction:.1f} points)",
        ],
    )
