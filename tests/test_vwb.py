"""The Very Wide Buffer structure."""

import pytest

from repro.core.vwb import VeryWideBuffer, VWBConfig
from repro.errors import ConfigurationError


class TestConfig:
    def test_paper_default_geometry(self):
        cfg = VWBConfig()
        assert cfg.total_bits == 2048
        assert cfg.n_lines == 2
        assert cfg.window_bytes == 128  # 1 Kbit per wide line
        assert cfg.lines_per_window == 2  # two 512-bit DL1 lines

    def test_one_kbit_geometry(self):
        cfg = VWBConfig(total_bits=1024)
        assert cfg.window_bytes == 64
        assert cfg.lines_per_window == 1

    def test_four_kbit_geometry(self):
        cfg = VWBConfig(total_bits=4096)
        assert cfg.window_bytes == 256
        assert cfg.lines_per_window == 4

    def test_rejects_window_smaller_than_line(self):
        with pytest.raises(ConfigurationError):
            VWBConfig(total_bits=512, n_lines=2, cache_line_bytes=64)

    def test_rejects_fractional_lines(self):
        with pytest.raises(ConfigurationError):
            VWBConfig(total_bits=2048, n_lines=3)

    def test_rejects_non_power_of_two_window(self):
        with pytest.raises(ConfigurationError):
            VWBConfig(total_bits=3072, n_lines=2, cache_line_bytes=64)

    def test_rejects_zero_hit_cycles(self):
        with pytest.raises(ConfigurationError):
            VWBConfig(hit_cycles=0)


class TestLookupAllocate:
    def test_window_addr_alignment(self):
        vwb = VeryWideBuffer(VWBConfig())
        assert vwb.window_addr(0) == 0
        assert vwb.window_addr(127) == 0
        assert vwb.window_addr(128) == 128
        assert vwb.window_addr(200) == 128

    def test_empty_lookup(self):
        vwb = VeryWideBuffer(VWBConfig())
        assert vwb.lookup(0) is None
        assert not vwb.contains(0)

    def test_allocate_and_contains(self):
        vwb = VeryWideBuffer(VWBConfig())
        assert vwb.allocate(0) is None  # invalid line used, nothing evicted
        assert vwb.contains(0)
        assert vwb.contains(127)
        assert not vwb.contains(128)

    def test_allocate_existing_is_touch(self):
        vwb = VeryWideBuffer(VWBConfig())
        vwb.allocate(0)
        assert vwb.allocate(64) is None  # same window
        assert len(vwb.resident_windows) == 1

    def test_fills_invalid_lines_first(self):
        vwb = VeryWideBuffer(VWBConfig())
        assert vwb.allocate(0) is None
        assert vwb.allocate(128) is None
        assert sorted(vwb.resident_windows) == [0, 128]

    def test_lru_eviction(self):
        vwb = VeryWideBuffer(VWBConfig())
        vwb.allocate(0)
        vwb.allocate(128)
        vwb.touch(vwb.lookup(0))  # 0 becomes MRU
        evicted = vwb.allocate(256)
        assert evicted.window_addr == 128
        assert vwb.contains(0) and vwb.contains(256)

    def test_eviction_reports_dirty(self):
        vwb = VeryWideBuffer(VWBConfig())
        vwb.allocate(0)
        vwb.touch(vwb.lookup(0), dirty=True)
        vwb.allocate(128)
        evicted = vwb.allocate(256)  # displaces window 0 (LRU)
        assert evicted.window_addr == 0
        assert evicted.dirty


class TestDirtyInvalidate:
    def test_dirty_tracking(self):
        vwb = VeryWideBuffer(VWBConfig())
        vwb.allocate(0)
        assert not vwb.is_dirty(0)
        vwb.touch(vwb.lookup(0), dirty=True)
        assert vwb.is_dirty(0)

    def test_invalidate(self):
        vwb = VeryWideBuffer(VWBConfig())
        vwb.allocate(0)
        vwb.touch(vwb.lookup(0), dirty=True)
        dropped = vwb.invalidate(0)
        assert dropped.dirty
        assert not vwb.contains(0)

    def test_invalidate_absent(self):
        vwb = VeryWideBuffer(VWBConfig())
        assert vwb.invalidate(0) is None

    def test_invalidate_clears_recency_stamp(self):
        # An invalidated line must look exactly like a never-used one:
        # clean, no window, and a zeroed last_touch (a stale stamp is
        # dead state that the sanitizer's invariants reject).
        vwb = VeryWideBuffer(VWBConfig())
        vwb.allocate(0)
        vwb.touch(vwb.lookup(0), dirty=True)
        vwb.invalidate(0)
        invalid = [line for line in vwb._lines if line.window_addr is None]
        assert len(invalid) == len(vwb._lines)
        assert all(line.last_touch == 0 for line in invalid)
        assert all(not line.dirty for line in invalid)

    def test_reset(self):
        vwb = VeryWideBuffer(VWBConfig())
        vwb.allocate(0)
        vwb.reset()
        assert vwb.resident_windows == []
