"""Derived metrics over run results (AMAT, MPKI, traffic shares).

The paper reasons in terms of total-cycle penalties; these helpers
expose the standard architecture metrics behind them so users can see
*why* a configuration wins: average memory access time of the D-cache
path, misses per kilo-instruction, and where the cycles went.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .cpu.model import RunResult
from .errors import ConfigurationError


@dataclass(frozen=True)
class RunMetrics:
    """Summary metrics of one run.

    Attributes:
        cycles: Total cycles.
        ipc: Instructions per cycle.
        amat_cycles: Average exposed memory-access time per demand load.
        load_mpki: DL1 demand-load misses per kilo-instruction.
        store_share: Fraction of cycles attributed to stores.
        load_share: Fraction of cycles attributed to loads.
        compute_share: Fraction of cycles attributed to arithmetic.
        bank_wait_share: Fraction of cycles the DL1 spent waiting on
            busy banks (a subset of the load/store shares, not additive
            with them).
        writeback_stall_share: Fraction of cycles lost to a full DL1
            write buffer (likewise a subset).
        buffer_hit_rate: Front-end buffer hit rate (0 for plain).
        write_retry_rate: DL1 write-verify retries per array write
            (0 without fault injection).
        fault_overhead_share: Fraction of cycles the reliability
            mechanisms inserted (retries + ECC decode + refills; a
            subset of the load/store shares, not additive with them).
        retired_lines: Line slots retired by graceful degradation.
    """

    cycles: float
    ipc: float
    amat_cycles: float
    load_mpki: float
    store_share: float
    load_share: float
    compute_share: float
    bank_wait_share: float
    writeback_stall_share: float
    buffer_hit_rate: float
    write_retry_rate: float = 0.0
    fault_overhead_share: float = 0.0
    retired_lines: int = 0


def metrics_of(result: RunResult) -> RunMetrics:
    """Compute :class:`RunMetrics` from a :class:`RunResult`.

    Raises:
        ConfigurationError: If the run executed no instructions.
    """
    if result.instructions <= 0:
        raise ConfigurationError("run executed no instructions")
    loads = max(1, result.counts["loads"])
    dl1 = result.dl1_stats
    fe = result.frontend_stats

    buffer_hits = fe.get("buffer_read_hits", 0) + fe.get("buffer_write_hits", 0)
    buffer_total = buffer_hits + fe.get("buffer_read_misses", 0) + fe.get(
        "buffer_write_misses", 0
    )
    misses = dl1.get("read_misses", 0) + dl1.get("write_misses", 0)

    rel = result.reliability_stats
    array_writes = (
        dl1.get("write_hits", 0) + dl1.get("write_misses", 0) + dl1.get("fills", 0)
    )
    fault_cycles = (
        rel.get("write_retry_cycles", 0.0)
        + rel.get("ecc_decode_cycles", 0.0)
        + rel.get("fault_refill_cycles", 0.0)
    )

    metrics = RunMetrics(
        cycles=result.cycles,
        ipc=result.ipc,
        amat_cycles=result.breakdown.get("load", 0.0) / loads,
        load_mpki=misses / result.instructions * 1000.0,
        store_share=result.breakdown.get("store", 0.0) / result.cycles,
        load_share=result.breakdown.get("load", 0.0) / result.cycles,
        compute_share=result.breakdown.get("compute", 0.0) / result.cycles,
        bank_wait_share=dl1.get("bank_wait_cycles", 0) / result.cycles,
        writeback_stall_share=dl1.get("writeback_stall_cycles", 0) / result.cycles,
        buffer_hit_rate=buffer_hits / buffer_total if buffer_total else 0.0,
        write_retry_rate=rel.get("write_retries", 0) / array_writes
        if array_writes
        else 0.0,
        fault_overhead_share=fault_cycles / result.cycles,
        retired_lines=result.retired_lines,
    )
    # The breakdown partitions the run's cycles (plus ifetch/branch
    # remainder), so the three op shares can never exceed the whole.
    assert metrics.load_share + metrics.store_share + metrics.compute_share <= 1.0 + 1e-9, (
        "cycle shares exceed 100%: "
        f"{metrics.load_share + metrics.store_share + metrics.compute_share}"
    )
    return metrics


def compare_runs(runs: Dict[str, RunResult]) -> str:
    """Render a metric table over named runs (rows = metrics)."""
    if not runs:
        raise ConfigurationError("no runs to compare")
    metrics = {name: metrics_of(result) for name, result in runs.items()}
    names = list(metrics)
    rows = [
        ("cycles", "{:.0f}", lambda m: m.cycles),
        ("IPC", "{:.3f}", lambda m: m.ipc),
        ("AMAT (cycles)", "{:.2f}", lambda m: m.amat_cycles),
        ("load MPKI", "{:.2f}", lambda m: m.load_mpki),
        ("load cycle share", "{:.1%}", lambda m: m.load_share),
        ("store cycle share", "{:.1%}", lambda m: m.store_share),
        ("compute cycle share", "{:.1%}", lambda m: m.compute_share),
        ("bank wait share", "{:.1%}", lambda m: m.bank_wait_share),
        ("wb stall share", "{:.1%}", lambda m: m.writeback_stall_share),
        ("buffer hit rate", "{:.1%}", lambda m: m.buffer_hit_rate),
    ]
    if any(r.reliability_stats for r in runs.values()):
        rows += [
            ("write retry rate", "{:.4f}", lambda m: m.write_retry_rate),
            ("fault cycle share", "{:.2%}", lambda m: m.fault_overhead_share),
            ("retired lines", "{:d}", lambda m: m.retired_lines),
        ]
    width = max(len(n) for n in names + ["metric"]) + 2
    lines = ["metric".ljust(22) + "".join(n.rjust(width) for n in names)]
    for label, fmt, getter in rows:
        cells = "".join(fmt.format(getter(metrics[n])).rjust(width) for n in names)
        lines.append(label.ljust(22) + cells)
    return "\n".join(lines)
