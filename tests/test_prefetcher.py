"""The hardware stride prefetcher."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mainmem import MainMemory
from repro.mem.prefetcher import StridePrefetcher


def make_pair(**pf_kwargs):
    cache = Cache(
        CacheConfig(
            name="d",
            capacity_bytes=8192,
            associativity=2,
            line_bytes=64,
            read_hit_cycles=4,
            write_hit_cycles=2,
            mshr_entries=8,
        ),
        MainMemory(latency_cycles=50.0, transfer_cycles=0.0),
    )
    return cache, StridePrefetcher(cache, **pf_kwargs)


class TestStrideDetection:
    def test_unit_stride_confirmed_after_three_accesses(self):
        cache, pf = make_pair()
        for n, addr in enumerate((0, 64, 128)):
            pf.observe(addr, float(n))
        assert pf.state_of(0) == (1, True)
        assert pf.triggers >= 1

    def test_two_accesses_not_enough(self):
        cache, pf = make_pair()
        pf.observe(0, 0.0)
        pf.observe(64, 1.0)
        assert pf.state_of(0) == (1, False)
        assert pf.issued == 0

    def test_large_stride_detected(self):
        cache, pf = make_pair()
        for n, addr in enumerate((0, 256, 512)):
            pf.observe(addr, float(n))
        assert pf.state_of(0) == (4, True)

    def test_negative_stride_detected(self):
        cache, pf = make_pair()
        for n, addr in enumerate((512, 448, 384)):
            pf.observe(addr, float(n))
        assert pf.state_of(384) == (-1, True)

    def test_same_line_accesses_ignored(self):
        cache, pf = make_pair()
        for n, addr in enumerate((0, 8, 16, 24)):
            pf.observe(addr, float(n))
        assert pf.issued == 0

    def test_irregular_pattern_never_confirms(self):
        cache, pf = make_pair()
        for n, addr in enumerate((0, 64, 256, 320, 64, 512)):
            pf.observe(addr, float(n))
        assert pf.issued == 0


class TestPrefetchIssue:
    def test_steady_stream_prefetches_ahead(self):
        cache, pf = make_pair(degree=2, distance=2)
        for n in range(4):
            pf.observe(n * 64, float(n))
        # Third access triggered prefetches at lines +2 and +3.
        assert pf.issued >= 2
        assert cache.stats.prefetch_misses >= 2

    def test_prefetched_line_hides_latency(self):
        from repro.mem.request import Access, AccessType

        cache, pf = make_pair(degree=4, distance=1)
        t = 0.0
        for n in range(3):
            pf.observe(n * 64, t)
            t += cache.access(Access(n * 64, 4, AccessType.READ), t)
        # Line 3 was prefetched; a much later demand read hits.
        latency = cache.access(Access(3 * 64, 4, AccessType.READ), t + 500.0)
        assert latency == 4.0

    def test_negative_targets_skipped(self):
        cache, pf = make_pair(degree=2, distance=4)
        for n, addr in enumerate((256, 192, 128)):
            pf.observe(addr, float(n))
        # Targets below address zero are dropped, no crash.
        assert pf.issued >= 0

    def test_region_conflicts_evict_state(self):
        cache, pf = make_pair(entries=1)
        pf.observe(0, 0.0)
        pf.observe(64, 1.0)
        pf.observe(100 * 4096, 2.0)  # different region, same slot
        assert pf.state_of(0) is None

    def test_reset(self):
        cache, pf = make_pair()
        for n in range(4):
            pf.observe(n * 64, float(n))
        pf.reset()
        assert pf.issued == 0
        assert pf.state_of(0) is None

    def test_parameter_validation(self):
        cache, _ = make_pair()
        with pytest.raises(ConfigurationError):
            StridePrefetcher(cache, entries=0)
        with pytest.raises(ConfigurationError):
            StridePrefetcher(cache, region_bytes=100)


class TestSystemIntegration:
    def test_hw_prefetcher_config(self):
        from repro.cpu.system import System, SystemConfig

        system = System(SystemConfig(technology="stt-mram", hw_prefetcher=True))
        assert system.frontend.hw_prefetcher is not None

    def test_hw_prefetcher_helps_streaming_dropin(self):
        from repro.cpu.system import System, SystemConfig
        from repro.workloads import build_kernel, materialize_trace

        trace = materialize_trace(build_kernel("atax"))
        plain = System(SystemConfig(technology="stt-mram")).run(trace)
        hwpf = System(SystemConfig(technology="stt-mram", hw_prefetcher=True)).run(trace)
        assert hwpf.cycles < plain.cycles

    def test_hw_prefetcher_cannot_fix_read_hit_latency(self):
        """The extension's headline: even with HW prefetching the drop-in
        NVM cache keeps most of its penalty."""
        from repro.cpu.system import System, SystemConfig
        from repro.workloads import build_kernel, materialize_trace
        from repro.cpu.system import warm_regions_of

        prog = build_kernel("gemm")
        trace = materialize_trace(prog)
        warm = warm_regions_of(prog)
        sram = System(SystemConfig(technology="sram")).run(trace, warm_regions=warm)
        hwpf = System(SystemConfig(technology="stt-mram", hw_prefetcher=True)).run(
            trace, warm_regions=warm
        )
        assert hwpf.penalty_vs(sram) > 30.0
