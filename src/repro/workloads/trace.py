"""Architectural trace events produced by the workload interpreter.

A trace is a flat sequence of events in program order.  Events are tiny
``__slots__`` classes rather than dataclasses: kernel traces run to
hundreds of thousands of events per run, and construction cost dominates
trace generation time.
"""

from __future__ import annotations

from typing import Dict, Iterable


class TraceEvent:
    """Base class for all trace events."""

    __slots__ = ()


class Compute(TraceEvent):
    """``ops`` cycles worth of datapath work (ALU/FPU, address generation)."""

    __slots__ = ("ops",)

    def __init__(self, ops: int) -> None:
        self.ops = ops

    def __repr__(self) -> str:
        return f"Compute({self.ops})"


class Branch(TraceEvent):
    """A (conditional) branch; ``taken`` back-edges close loop iterations."""

    __slots__ = ("taken",)

    def __init__(self, taken: bool = True) -> None:
        self.taken = taken

    def __repr__(self) -> str:
        return f"Branch(taken={self.taken})"


class Load(TraceEvent):
    """A demand load of ``size`` bytes at ``addr``."""

    __slots__ = ("addr", "size")

    def __init__(self, addr: int, size: int) -> None:
        self.addr = addr
        self.size = size

    def __repr__(self) -> str:
        return f"Load({self.addr:#x}, {self.size})"


class Store(TraceEvent):
    """A demand store of ``size`` bytes at ``addr``."""

    __slots__ = ("addr", "size")

    def __init__(self, addr: int, size: int) -> None:
        self.addr = addr
        self.size = size

    def __repr__(self) -> str:
        return f"Store({self.addr:#x}, {self.size})"


class Prefetch(TraceEvent):
    """A software prefetch hint for the data at ``addr``."""

    __slots__ = ("addr",)

    def __init__(self, addr: int) -> None:
        self.addr = addr

    def __repr__(self) -> str:
        return f"Prefetch({self.addr:#x})"


class IRMark(TraceEvent):
    """A zero-cost region marker naming the IR loop being entered.

    Emitted only when :attr:`~repro.workloads.interp.TraceConfig.annotate_ir`
    is on (profiling runs); the CPU model executes it in zero cycles and
    zero instructions, so annotated and plain traces time identically.
    ``label`` is the dotted loop-variable path, e.g. ``"i.k.j"``.
    """

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f"IRMark({self.label!r})"


#: Interned branch events.  A trace contains exactly two distinct branch
#: values over hundreds of thousands of occurrences; events are immutable
#: in practice (nothing in the simulator writes to them — pinned by
#: ``tests/test_encode.py``), so the interpreter and decoder share these
#: singletons instead of allocating per back-edge.
BRANCH_TAKEN = Branch(True)
BRANCH_NOT_TAKEN = Branch(False)

#: Compute events are interned for small op counts the same way — loop
#: bodies reuse a handful of distinct values (flops + overhead ops per
#: statement), so the cache stays tiny while removing one allocation per
#: statement execution.
_COMPUTE_CACHE_MAX = 256
_COMPUTE_CACHE: Dict[int, Compute] = {}


def branch_event(taken: bool) -> Branch:
    """The interned :class:`Branch` for ``taken`` (no allocation)."""
    return BRANCH_TAKEN if taken else BRANCH_NOT_TAKEN


def compute_event(ops: int) -> Compute:
    """A :class:`Compute` of ``ops`` ops, interned for common counts."""
    ev = _COMPUTE_CACHE.get(ops)
    if ev is None:
        ev = Compute(ops)
        if 0 <= ops < _COMPUTE_CACHE_MAX:
            _COMPUTE_CACHE[ops] = ev
    return ev


def trace_summary(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """Count events by kind; useful in tests and workload reports.

    Accepts either an event iterable or an
    :class:`~repro.workloads.encode.EncodedTrace` — the encoded form is
    summarised from its columns directly (duck-typed via its ``summary``
    method to keep this module free of an import cycle), without
    decoding a single event object.

    Returns:
        A dict with keys ``loads``, ``stores``, ``prefetches``,
        ``branches``, ``compute_events``, ``compute_ops``,
        ``load_bytes``, ``store_bytes`` and ``ir_marks``.
    """
    encoded_summary = getattr(events, "summary", None)
    if encoded_summary is not None:
        return encoded_summary()
    counts = {
        "loads": 0,
        "stores": 0,
        "prefetches": 0,
        "branches": 0,
        "compute_events": 0,
        "compute_ops": 0,
        "load_bytes": 0,
        "store_bytes": 0,
        "ir_marks": 0,
    }
    for ev in events:
        kind = type(ev)
        if kind is Load:
            counts["loads"] += 1
            counts["load_bytes"] += ev.size
        elif kind is Store:
            counts["stores"] += 1
            counts["store_bytes"] += ev.size
        elif kind is Compute:
            counts["compute_events"] += 1
            counts["compute_ops"] += ev.ops
        elif kind is Branch:
            counts["branches"] += 1
        elif kind is Prefetch:
            counts["prefetches"] += 1
        elif kind is IRMark:
            counts["ir_marks"] += 1
    return counts
