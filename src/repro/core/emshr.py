"""Enhanced-MSHR (EMSHR) front-end — comparison point of Figure 8.

Models the proposal of Komalan et al., "Feasibility exploration of NVM
based I-cache through MSHR enhancements" (DATE 2014), reference [7] of
the paper, adapted to the D-cache: the MSHR file is enlarged so that
entries *linger* after their fill completes and keep serving the datapath
at buffer speed until the slot is reclaimed.

The structural limitation the paper exploits in Figure 8: an MSHR entry
only ever exists for a line that **missed** in the NVM DL1.  Loads that
hit the NVM array still pay its 4-cycle read, so EMSHR mitigates miss
latency (a write/miss-oriented concern) but not the read-hit latency that
dominates an L1 D-cache — hence the VWB's ~2x advantage.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..errors import ConfigurationError
from ..mem.cache import Cache
from ..mem.request import Access, AccessType
from ..units import BITS_PER_BYTE
from .frontend import DCacheFrontend


class _LingeringEntry:
    """One EMSHR entry holding a filled line."""

    __slots__ = ("ready_at", "dirty")

    def __init__(self, ready_at: float) -> None:
        self.ready_at = ready_at
        self.dirty = False


class EMSHRFrontend(DCacheFrontend):
    """NVM DL1 with an enhanced MSHR file that serves hits from entries.

    Args:
        backing: The NVM DL1 array.
        total_bits: Data capacity of the MSHR file (2 Kbit in Figure 8).
        hit_cycles: Latency of a hit in a lingering entry.
    """

    name = "emshr"

    def __init__(self, backing: Cache, total_bits: int = 2048, hit_cycles: int = 1) -> None:
        super().__init__(backing)
        line_bits = backing.config.line_bytes * BITS_PER_BYTE
        if total_bits % line_bits != 0 or total_bits < line_bits:
            raise ConfigurationError(
                f"EMSHR capacity {total_bits} bits must be a multiple of the "
                f"{line_bits}-bit cache line"
            )
        self._capacity = total_bits // line_bits
        self._hit_cycles = float(hit_cycles)
        # Insertion-ordered: eviction is FIFO, matching the DATE'14 design
        # where entries are reclaimed oldest-first.
        self._entries: "OrderedDict[int, _LingeringEntry]" = OrderedDict()

    def read(self, addr: int, size: int, now: float) -> float:
        """Load: lingering entry first, then the NVM DL1."""
        total = 0.0
        t = now
        for line in Access(addr, size, AccessType.READ).lines(self.backing.config.line_bytes):
            latency = self._read_line(line, t)
            total += latency
            t += latency
        return total

    def write(self, addr: int, size: int, now: float) -> float:
        """Store: update a lingering entry if present, else the NVM array."""
        total = 0.0
        t = now
        for line in Access(addr, size, AccessType.WRITE).lines(self.backing.config.line_bytes):
            latency = self._write_line(line, t)
            total += latency
            t += latency
        return total

    def prefetch(self, addr: int, now: float) -> float:
        """Software prefetch: allocates an entry only if the DL1 misses.

        A prefetch of a line already resident in the NVM DL1 is a no-op —
        the MSHR path is only entered on a miss, so EMSHR cannot stage
        DL1-resident data the way the VWB promotion can.
        """
        self.stats.prefetches_issued += 1
        line = self.backing.line_addr(addr)
        if line in self._entries or self.backing.contains(line):
            self.stats.prefetches_useless += 1
            return 0.0
        latency = self.backing.line_access(line, False, now)
        self._allocate(line, now + latency, now)
        return 0.0

    def reset(self) -> None:
        """Reset the entry file, stats and backing cache."""
        super().reset()
        self._entries.clear()

    def clear_stats(self) -> None:
        """Keep lingering entries (marked filled) but drop stats/timing."""
        super().clear_stats()
        for entry in self._entries.values():
            entry.ready_at = 0.0

    # ------------------------------------------------------------------

    def _read_line(self, line: int, now: float) -> float:
        entry = self._entries.get(line)
        if entry is not None:
            wait = max(0.0, entry.ready_at - now)
            if wait > 0:
                self.stats.buffer_read_misses += 1
            else:
                self.stats.buffer_read_hits += 1
            if self._probing:
                self.probe.buffer_access(
                    "emshr", False, wait == 0.0, line,
                    wait + self._hit_cycles, self._hit_cycles, now,
                )
            return wait + self._hit_cycles
        self.stats.buffer_read_misses += 1
        if self.backing.contains(line):
            # NVM read hit: pays the full array read — EMSHR cannot help.
            return self.backing.line_access(line, False, now)
        latency = self.backing.line_access(line, False, now)
        self._allocate(line, now + latency, now)
        if self._probing:
            self.probe.promotion("emshr", line, latency, now)
        return latency

    def _write_line(self, line: int, now: float) -> float:
        entry = self._entries.get(line)
        if entry is not None:
            wait = max(0.0, entry.ready_at - now)
            entry.dirty = True
            self.stats.buffer_write_hits += 1
            if self._probing:
                self.probe.buffer_access(
                    "emshr", True, True, line,
                    wait + self._hit_cycles, self._hit_cycles, now,
                )
            return wait + self._hit_cycles
        self.stats.buffer_write_misses += 1
        return self.backing.access(
            Access(line, self.backing.config.line_bytes, AccessType.WRITE), now
        )

    def _allocate(self, line: int, ready_at: float, now: float) -> None:
        """Install a lingering entry, reclaiming the oldest when full."""
        while len(self._entries) >= self._capacity:
            victim_line, victim = self._entries.popitem(last=False)
            if victim.dirty:
                self.stats.buffer_writebacks += 1
                self.backing.install_line(victim_line, True, now)
        self._entries[line] = _LingeringEntry(ready_at)
        self.stats.promotions += 1
