"""Memory technology models: SRAM, STT-MRAM, ReRAM and PRAM parameters.

This package provides the numbers that drive every simulation in the
reproduction:

- :mod:`repro.tech.params` — per-technology cell/array parameters and the
  32 nm presets behind Table I of the paper;
- :mod:`repro.tech.array_model` — an analytic (mini-CACTI-style) model that
  derives latency/area/energy for arbitrary array geometries;
- :mod:`repro.tech.scaling` — first-order technology-node scaling;
- :mod:`repro.tech.energy` — leakage and dynamic-energy accounting;
- :mod:`repro.tech.endurance` — write-endurance and lifetime estimates;
- :mod:`repro.tech.compare` — the Table I comparison generator.
"""

from .params import (
    MemoryTechnology,
    TechnologyKind,
    SRAM_32NM_HP,
    STT_MRAM_32NM,
    RERAM_32NM,
    PRAM_32NM,
    TECHNOLOGY_PRESETS,
    get_technology,
)
from .array_model import ArrayGeometry, ArrayEstimate, estimate_array
from .scaling import scale_technology
from .energy import EnergyLedger, EnergyReport
from .endurance import EnduranceModel, LifetimeEstimate
from .compare import TableOneRow, build_table_one

__all__ = [
    "MemoryTechnology",
    "TechnologyKind",
    "SRAM_32NM_HP",
    "STT_MRAM_32NM",
    "RERAM_32NM",
    "PRAM_32NM",
    "TECHNOLOGY_PRESETS",
    "get_technology",
    "ArrayGeometry",
    "ArrayEstimate",
    "estimate_array",
    "scale_technology",
    "EnergyLedger",
    "EnergyReport",
    "EnduranceModel",
    "LifetimeEstimate",
    "TableOneRow",
    "build_table_one",
]
