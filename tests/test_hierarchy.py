"""Hierarchy wiring: IL1, L2, DRAM."""

import pytest

from repro.mem.hierarchy import (
    HierarchyConfig,
    LineAccessAdapter,
    MemoryHierarchy,
    default_il1_config,
    default_l2_config,
)
from repro.mem.request import Access, AccessType
from repro.units import kib, mib


class TestDefaults:
    """The defaults must match the paper's Section VI platform."""

    def test_il1_geometry(self):
        cfg = default_il1_config()
        assert cfg.capacity_bytes == kib(32)
        assert cfg.associativity == 2
        assert cfg.read_hit_cycles == 1  # SRAM

    def test_l2_geometry(self):
        cfg = default_l2_config()
        assert cfg.capacity_bytes == mib(2)
        assert cfg.associativity == 16

    def test_l2_slower_than_l1(self):
        assert default_l2_config().read_hit_cycles > default_il1_config().read_hit_cycles


class TestWiring:
    def test_l2_miss_reaches_memory(self):
        h = MemoryHierarchy(HierarchyConfig())
        latency = h.l2.line_access(0, False, 0.0)
        assert latency > h.config.memory_latency_cycles
        assert h.memory.reads == 1

    def test_l2_hit_stays_on_chip(self):
        h = MemoryHierarchy(HierarchyConfig())
        h.l2.line_access(0, False, 0.0)
        latency = h.l2.line_access(0, False, 1000.0)
        assert latency == h.config.l2.read_hit_cycles
        assert h.memory.reads == 1

    def test_ifetch_through_il1(self):
        h = MemoryHierarchy(HierarchyConfig())
        h.ifetch(0, 0.0)
        assert h.il1.stats.read_misses == 1
        h.ifetch(0, 1000.0)
        assert h.il1.stats.read_hits == 1

    def test_il1_miss_fills_l2(self):
        h = MemoryHierarchy(HierarchyConfig())
        h.ifetch(0, 0.0)
        assert h.l2.contains(0)

    def test_adapter_forwards(self):
        h = MemoryHierarchy(HierarchyConfig())
        adapter = LineAccessAdapter(h.l2)
        adapter.access(0, False, 0.0)
        assert h.l2.contains(0)

    def test_reset(self):
        h = MemoryHierarchy(HierarchyConfig())
        h.l2.line_access(0, False, 0.0)
        h.reset()
        assert not h.l2.contains(0)
        assert h.memory.accesses == 0

    def test_clear_stats_keeps_contents(self):
        h = MemoryHierarchy(HierarchyConfig())
        h.l2.line_access(0, False, 0.0)
        h.clear_stats()
        assert h.l2.contains(0)
        assert h.l2.stats.accesses == 0
        assert h.memory.accesses == 0
