"""The parallel execution engine and its content-addressed run cache.

The central invariant — a point's result is bit-identical whether it ran
inline, in a worker process, or was replayed from the cache — is pinned
here with full :class:`~repro.cpu.model.RunResult` equality (the
dataclass ``==`` compares every field, histogram included).
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.exec import (
    DEFAULT_CACHE_DIR,
    ExecutionEngine,
    RunCache,
    RunPoint,
    cache_key_of,
    code_fingerprint,
    key_material_of,
    make_engine,
)
from repro.exec.cache import decode_result, encode_result
from repro.exec.point import execute_point
from repro.experiments import ExperimentRunner
from repro.experiments.runner import CONFIGURATIONS
from repro.obs import RecordingProbe
from repro.reliability.faults import ReliabilityConfig
from repro.transforms.pipeline import OptLevel


def point(kernel="gemm", config="vwb", level=OptLevel.NONE, **replacements):
    cfg = CONFIGURATIONS[config]
    if replacements:
        cfg = dataclasses.replace(cfg, **replacements)
    return RunPoint(kernel=kernel, config=cfg, level=level)


class TestCacheKey:
    def test_key_is_deterministic(self):
        assert cache_key_of(point()) == cache_key_of(point())

    def test_key_differs_across_kernels_levels_configs(self):
        keys = {
            cache_key_of(point()),
            cache_key_of(point(kernel="atax")),
            cache_key_of(point(level=OptLevel.FULL)),
            cache_key_of(point(config="sram")),
        }
        assert len(keys) == 4

    def test_changed_tech_params_change_key(self):
        """Editing one technology number must orphan the old entry."""
        base = point()
        tech = base.config.resolved_technology()
        slower = dataclasses.replace(tech, write_latency_ns=tech.write_latency_ns + 0.1)
        assert cache_key_of(point(technology=slower)) != cache_key_of(base)

    def test_changed_seed_changes_key(self):
        a = point(reliability=ReliabilityConfig(seed=0, write_error_rate=1e-4))
        b = point(reliability=ReliabilityConfig(seed=1, write_error_rate=1e-4))
        assert cache_key_of(a) != cache_key_of(b)

    def test_material_lists_documented_fields(self):
        material = key_material_of(point())
        assert set(material) == {
            "format", "code", "kernel", "size", "level",
            "seed", "ir", "config", "tech", "il1_tech",
        }
        assert material["code"] == code_fingerprint()
        # The material must be JSON-serialisable (it is what gets hashed).
        json.dumps(material, sort_keys=True)

    def test_label_does_not_affect_key(self):
        a = RunPoint(kernel="gemm", config=CONFIGURATIONS["vwb"], label="x")
        b = RunPoint(kernel="gemm", config=CONFIGURATIONS["vwb"], label="y")
        assert cache_key_of(a) == cache_key_of(b)


class TestRunCache:
    @pytest.fixture(scope="class")
    def result(self):
        return execute_point(point(kernel="atax"))

    def test_round_trip_is_bit_identical(self, result):
        assert decode_result(encode_result(result)) == result

    def test_put_get_identity(self, tmp_path, result):
        cache = RunCache(tmp_path)
        cache.put("ab" * 32, result, material={"kernel": "atax"})
        assert cache.get("ab" * 32) == result

    def test_missing_entry_is_none(self, tmp_path):
        assert RunCache(tmp_path).get("cd" * 32) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, result):
        cache = RunCache(tmp_path)
        cache.put("ab" * 32, result)
        cache.path_for("ab" * 32).write_text("{not json")
        assert cache.get("ab" * 32) is None

    def test_format_version_mismatch_is_a_miss(self, tmp_path, result):
        cache = RunCache(tmp_path)
        cache.put("ab" * 32, result)
        entry = json.loads(cache.path_for("ab" * 32).read_text())
        entry["format"] = 0
        cache.path_for("ab" * 32).write_text(json.dumps(entry))
        assert cache.get("ab" * 32) is None

    def test_two_level_layout(self, tmp_path, result):
        cache = RunCache(tmp_path)
        key = "ef" * 32
        cache.put(key, result)
        assert cache.path_for(key) == tmp_path / "ef" / f"{key}.json"
        assert cache.entries() == [cache.path_for(key)]


class TestEngine:
    POINTS = [
        point(kernel="gemm"),
        point(kernel="atax"),
        point(kernel="gemm", config="sram"),
    ]

    @pytest.fixture(scope="class")
    def serial(self):
        return [execute_point(p) for p in self.POINTS]

    def test_parallel_matches_serial_bit_for_bit(self, tmp_path, serial):
        engine = ExecutionEngine(jobs=2, cache_dir=str(tmp_path / "c"))
        assert engine.run_points(self.POINTS) == serial
        assert engine.stats.executed == 3

    def test_warm_replay_is_all_hits_and_identical(self, tmp_path, serial):
        cache_dir = str(tmp_path / "c")
        ExecutionEngine(jobs=2, cache_dir=cache_dir).run_points(self.POINTS)
        warm = ExecutionEngine(jobs=2, cache_dir=cache_dir)
        assert warm.run_points(self.POINTS) == serial
        assert warm.stats.hits == 3
        assert warm.stats.executed == 0
        assert warm.stats.hit_rate() == 100.0

    def test_within_batch_dedup(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=str(tmp_path / "c"))
        results = engine.run_points([point(), point()])
        assert results[0] == results[1]
        assert engine.stats.executed == 1
        assert engine.stats.deduplicated == 1

    def test_resume_after_interrupt(self, tmp_path, serial):
        """A partial sweep's completed points replay; only the rest run."""
        cache_dir = str(tmp_path / "c")
        ExecutionEngine(jobs=1, cache_dir=cache_dir).run_points(self.POINTS[:1])
        resumed = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        assert resumed.run_points(self.POINTS) == serial
        assert resumed.stats.hits == 1
        assert resumed.stats.executed == 2

    def test_no_cache_still_parallel(self, serial):
        engine = ExecutionEngine(jobs=2, cache_dir=None)
        assert engine.run_points(self.POINTS) == serial
        assert engine.stats.hits == 0
        assert "cache off" in engine.summary()

    def test_probe_counts_hits_and_runs(self, tmp_path):
        cache_dir = str(tmp_path / "c")
        probe = RecordingProbe(record_events=True)
        ExecutionEngine(jobs=1, cache_dir=cache_dir, probe=probe).run_points([point()])
        ExecutionEngine(jobs=1, cache_dir=cache_dir, probe=probe).run_points([point()])
        assert probe.exec_counters == {"run": 1, "hit": 1}
        kinds = {e.kind for e in probe.events if e.source == "exec"}
        assert kinds == {"point_run", "point_hit"}

    def test_progress_stream(self, tmp_path):
        import io

        stream = io.StringIO()
        ExecutionEngine(jobs=1, cache_dir=str(tmp_path / "c"), progress=stream).run_points(
            [point()]
        )
        assert "[1/1] gemm/vwb/NONE: run" in stream.getvalue()

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="--jobs"):
            ExecutionEngine(jobs=0)


class TestMakeEngine:
    def test_plain_serial_gets_no_engine(self):
        assert make_engine(jobs=1, cache_dir=None) is None
        assert make_engine(jobs=1, cache_dir=None, no_cache=True) is None

    def test_jobs_engage_default_cache(self):
        engine = make_engine(jobs=2)
        assert engine is not None
        assert str(engine.cache.root) == DEFAULT_CACHE_DIR

    def test_no_cache_keeps_parallelism(self):
        engine = make_engine(jobs=2, no_cache=True)
        assert engine.cache is None
        assert engine.jobs == 2

    def test_cache_dir_alone_engages(self, tmp_path):
        engine = make_engine(jobs=1, cache_dir=str(tmp_path))
        assert engine is not None
        assert engine.jobs == 1

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigurationError, match="--jobs"):
            make_engine(jobs=0)


class TestRunnerIntegration:
    KERNELS = ["gemm", "atax"]

    @pytest.fixture(scope="class")
    def serial_runner(self):
        return ExperimentRunner(kernels=self.KERNELS)

    def engine_runner(self, tmp_path, jobs=2):
        engine = ExecutionEngine(jobs=jobs, cache_dir=str(tmp_path / "c"), progress=None)
        return ExperimentRunner(kernels=self.KERNELS, engine=engine), engine

    def test_penalties_identical_serial_vs_engine(self, tmp_path, serial_runner):
        expected = serial_runner.penalties("vwb", OptLevel.FULL)
        runner, engine = self.engine_runner(tmp_path)
        assert runner.penalties("vwb", OptLevel.FULL) == expected
        # Whole figure went out as one batch: vwb + sram per kernel.
        assert engine.stats.points == 4

    def test_penalties_identical_on_warm_cache(self, tmp_path, serial_runner):
        expected = serial_runner.penalties("vwb", OptLevel.FULL)
        self.engine_runner(tmp_path)[0].penalties("vwb", OptLevel.FULL)
        warm_runner, warm_engine = self.engine_runner(tmp_path)
        assert warm_runner.penalties("vwb", OptLevel.FULL) == expected
        assert warm_engine.stats.hits == 4
        assert warm_engine.stats.executed == 0

    def test_reliability_sweep_identical(self, tmp_path):
        rates = (1e-4, 1e-3)
        expected = ExperimentRunner(kernels=self.KERNELS).reliability_sweep(
            "gemm", rates, configs=("vwb",), seed=3
        )
        runner, engine = self.engine_runner(tmp_path)
        assert runner.reliability_sweep("gemm", rates, configs=("vwb",), seed=3) == expected
        assert engine.stats.points == 3  # 2 faulty points + 1 sram baseline

    def test_run_memoises_adhoc_configs_by_content(self, tmp_path):
        runner, engine = self.engine_runner(tmp_path, jobs=1)
        cfg = dataclasses.replace(CONFIGURATIONS["vwb"], dl1_banks=2)
        first = runner.run(cfg, "gemm")
        second = runner.run(cfg, "gemm")
        assert first == second
        assert engine.stats.points == 1  # second call hit the in-memory memo


class TestCLI:
    def test_cold_then_warm_sweep_is_identical_and_all_hits(self, tmp_path, capsys):
        args = [
            "sweep", "--param", "dl1_banks", "--values", "1", "2",
            "--kernels", "gemm", "--jobs", "2",
            "--cache-dir", str(tmp_path / "c"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert main(args) == 0
        warm = capsys.readouterr()

        def table(text):
            return [line for line in text.splitlines() if not line.startswith("exec:")]

        assert table(warm.out) == table(cold.out)
        assert "0 misses (100% cache hits)" in warm.out
        assert "3 cache hits" in warm.out  # 2 swept + 1 shared sram baseline

    def test_jobs_zero_is_usage_error(self, capsys):
        assert main(["fig1", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_unknown_sweep_config_lists_aliases(self, capsys):
        code = main(
            ["sweep", "--param", "dl1_banks", "--values", "1", "--config", "victim"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown configuration" in err
        assert "nvm-vwb" in err
