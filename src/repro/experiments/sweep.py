"""Generic parameter sweeps over :class:`~repro.cpu.system.SystemConfig`.

The named ablations cover the design axes the paper discusses; this
module generalises them: sweep *any* ``SystemConfig`` field (or
``cpu.<field>`` for CPU parameters) over a value list and get the usual
penalty table back.

CLI::

    python -m repro sweep --param dl1_banks --values 1 2 4 8
    python -m repro sweep --param cpu.load_use_overlap --values 0 1 1.5 2
    python -m repro sweep --param vwb_bits --values 1024 2048 --config vwb
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Optional, Sequence

from ..cpu.model import CPUConfig
from ..cpu.system import SystemConfig
from ..errors import ConfigurationError
from ..transforms.pipeline import OptLevel
from .report import FigureResult
from .runner import CONFIGURATIONS, ExperimentRunner, resolve_config_name


def _coerce(raw: str, example) -> object:
    """Parse a CLI string into the type of the field's current value."""
    if isinstance(example, bool):
        return raw.lower() in ("1", "true", "yes", "on")
    if isinstance(example, int):
        return int(raw)
    if isinstance(example, float):
        return float(raw)
    return raw


def _with_param(base: SystemConfig, param: str, value) -> SystemConfig:
    """Return ``base`` with ``param`` (possibly ``cpu.<field>``) replaced."""
    if param.startswith("cpu."):
        cpu_field = param[len("cpu."):]
        if cpu_field not in {f.name for f in fields(CPUConfig)}:
            valid = ", ".join(f.name for f in fields(CPUConfig))
            raise ConfigurationError(f"unknown CPU parameter {cpu_field!r}; one of: {valid}")
        return replace(base, cpu=replace(base.cpu, **{cpu_field: value}))
    if param not in {f.name for f in fields(SystemConfig)}:
        valid = ", ".join(f.name for f in fields(SystemConfig))
        raise ConfigurationError(f"unknown parameter {param!r}; one of: {valid}")
    return replace(base, **{param: value})


def parse_values(param: str, raw_values: Sequence[str], base: SystemConfig) -> list:
    """Coerce CLI value strings against the parameter's current type.

    Parameters
    ----------
    param : str
        A :class:`SystemConfig` field name, or ``cpu.<field>``.
    raw_values : sequence of str
        The CLI-supplied value strings (already-typed values pass
        through unchanged).
    base : SystemConfig
        Configuration whose current field value sets the target type.

    Returns
    -------
    list
        The values, coerced to the field's type.
    """
    if param.startswith("cpu."):
        example = getattr(base.cpu, param[len("cpu."):], None)
    else:
        example = getattr(base, param, None)
    if example is None:
        example = raw_values[0]
    return [_coerce(v, example) if isinstance(v, str) else v for v in raw_values]


def run_sweep(
    param: str,
    values: Sequence,
    runner: Optional[ExperimentRunner] = None,
    config: str = "vwb",
    level: OptLevel = OptLevel.FULL,
) -> FigureResult:
    """Sweep one configuration parameter; penalties vs the SRAM baseline.

    Parameters
    ----------
    param : str
        A :class:`SystemConfig` field name, or ``cpu.<field>``.
    values : sequence
        Values to sweep (already typed, or CLI strings).
    runner : ExperimentRunner, optional
        Shared experiment runner (kernels/sizes come from it; an
        attached :class:`~repro.exec.engine.ExecutionEngine` fans the
        whole sweep grid out as one parallel batch).
    config : str
        Base named configuration (or alias) to modify.
    level : OptLevel
        Code optimization level for both sides.

    Returns
    -------
    FigureResult
        One series per swept value, penalties per kernel.

    Raises
    ------
    ConfigurationError
        On an empty value list, an unknown parameter name, or an
        unknown base configuration (the error lists the valid names and
        aliases; the CLI maps it to exit code 2).
    """
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    config = resolve_config_name(config)
    runner = runner or ExperimentRunner()
    base = CONFIGURATIONS[config]
    typed = parse_values(param, list(values), base)

    specs = []
    for value in typed:
        swept = _with_param(base, param, value)
        specs.append((swept, None, f"sweep-{param}-{value}"))
        if param.startswith("cpu."):
            specs.append(
                (_with_param(CONFIGURATIONS["sram"], param, value), None, f"sweep-base-{param}-{value}")
            )
        else:
            specs.append(("sram", None, None))
    runner.prefetch(
        [
            (cfg, kernel, level, key)
            for cfg, _, key in specs
            for kernel in runner.kernels
        ]
    )

    series = {}
    for value in typed:
        swept = _with_param(base, param, value)
        # CPU parameters change the *core*, so the SRAM baseline must run
        # on the same core for the penalty to stay an apples-to-apples
        # memory-system comparison.
        if param.startswith("cpu."):
            baseline = _with_param(CONFIGURATIONS["sram"], param, value)
            baseline_key = f"sweep-base-{param}-{value}"
        else:
            baseline = "sram"
            baseline_key = None
        penalties = []
        for kernel in runner.kernels:
            swept_run = runner.run(swept, kernel, level, cache_key=f"sweep-{param}-{value}")
            base_run = runner.run(baseline, kernel, level, cache_key=baseline_key)
            penalties.append(swept_run.penalty_vs(base_run))
        series[f"{param}={value}"] = penalties
    avgs = {k: sum(v) / len(v) for k, v in series.items()}
    best = min(avgs, key=avgs.get)
    return FigureResult(
        name=f"sweep-{param.replace('.', '-')}",
        title=f"Penalty sweep of {param} on the '{config}' configuration ({level.value} code)",
        labels=list(runner.kernels),
        series=series,
        notes=[
            "averages: " + ", ".join(f"{k}: {v:.1f}%" for k, v in avgs.items()),
            f"best setting: {best}",
        ],
    )
