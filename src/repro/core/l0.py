"""L0 filter-cache front-end — comparison point of Figure 8.

"We compared it to a few techniques for write mitigation in NVMs like a
variation of the commonly used L0 cache ... The hardware structures are
made fully associative and have the same size (2KBit) as that of the VWB
for a fair comparison.  However, the given structures are not as wide as
the VWB and conform to the interface of the regular size memory array."

So: a tiny fully-associative cache of regular 64 B lines (four of them at
2 Kbit) between the datapath and the NVM DL1.  Hits cost one cycle; a
miss reads exactly one line through the NVM array's *narrow* interface.

Two structural deficits against the VWB, both from Section VI's
comparison argument:

- narrow fills: one 4-cycle NVM read buys 64 B instead of a whole wide
  window, so streaming code promotes twice as often;
- it is an ordinary cache, so a software prefetch *allocates at issue*
  like any cache fill — there is no software-managed fill-buffer
  discipline keeping in-flight lines from displacing live ones.  The VWB
  is explicitly built (asymmetric register file, post-decode MUX) to be
  exploited by software; the paper attributes its 2x margin to "the
  uniqueness of the structure and the software optimizations included to
  exploit it".
"""

from __future__ import annotations

from typing import Dict

from ..errors import ConfigurationError
from ..mem.cache import Cache
from ..mem.request import Access, AccessType
from ..units import BITS_PER_BYTE
from .frontend import DCacheFrontend
from .vwb import EvictedWindow, VeryWideBuffer, VWBConfig


class L0Frontend(DCacheFrontend):
    """Tiny fully-associative filter cache in front of the NVM DL1.

    Args:
        backing: The NVM DL1 array.
        total_bits: Capacity (2 Kbit to match the VWB in Figure 8).
        hit_cycles: Datapath access time of the L0.
    """

    name = "l0"

    def __init__(self, backing: Cache, total_bits: int = 2048, hit_cycles: int = 1) -> None:
        super().__init__(backing)
        line_bytes = backing.config.line_bytes
        line_bits = line_bytes * BITS_PER_BYTE
        if total_bits % line_bits != 0 or total_bits < line_bits:
            raise ConfigurationError(
                f"L0 capacity {total_bits} bits must be a multiple of the "
                f"{line_bits}-bit cache line"
            )
        n_lines = total_bits // line_bits
        # Reuse the wide-buffer state machine with window == one cache
        # line: fully-associative, LRU, per-line dirty bit.
        self._store = VeryWideBuffer(
            VWBConfig(
                total_bits=total_bits,
                n_lines=n_lines,
                cache_line_bytes=line_bytes,
                hit_cycles=hit_cycles,
            )
        )
        #: Lines allocated but still filling: line base -> ready cycle.
        self._fill_ready: Dict[int, float] = {}
        #: Outstanding-fill bound (the L0's own small MSHR file).
        self._max_outstanding_fills = 4
        # Cached per-access constants (both configs are immutable).
        self._line_bytes = line_bytes
        self._hit_cycles = float(hit_cycles)

    def read(self, addr: int, size: int, now: float) -> float:
        """Load: L0 first; on a miss, fill one line from the NVM DL1."""
        lb = self._line_bytes
        first = addr - addr % lb
        last = (addr + size - 1) - (addr + size - 1) % lb
        total = 0.0
        t = now
        for line in range(first, last + lb, lb):
            latency = self._read_line(line, t)
            total += latency
            t += latency
        return total

    def write(self, addr: int, size: int, now: float) -> float:
        """Store: update the L0 if present, else write the NVM array."""
        lb = self._line_bytes
        first = addr - addr % lb
        last = (addr + size - 1) - (addr + size - 1) % lb
        total = 0.0
        t = now
        for line in range(first, last + lb, lb):
            latency = self._write_line(line, t)
            total += latency
            t += latency
        return total

    def prefetch(self, addr: int, now: float) -> float:
        """Software prefetch: a cache fill that allocates at issue.

        Like any ordinary cache, the L0 allocates the line as the fill
        starts; an in-flight prefetch can therefore displace a line the
        loop is still using — the structural weakness the VWB's staged
        fill buffers avoid.
        """
        self.stats.prefetches_issued += 1
        line = self._store.window_addr(addr)
        if self._store.contains(line):
            self.stats.prefetches_useless += 1
            return 0.0
        in_flight = sum(1 for ready in self._fill_ready.values() if ready > now)
        if in_flight >= self._max_outstanding_fills:
            # All fill MSHRs busy: the hint is dropped in hardware.
            self.stats.prefetches_useless += 1
            return 0.0
        stall = self._fill(line, now)
        return stall

    def reset(self) -> None:
        """Reset the L0 contents, fills, stats and backing cache."""
        super().reset()
        self._store.reset()
        self._fill_ready.clear()

    def clear_stats(self) -> None:
        """Keep L0 contents but drop in-flight fills and stats."""
        super().clear_stats()
        self._fill_ready.clear()

    # ------------------------------------------------------------------

    def _read_line(self, line: int, now: float) -> float:
        hit_cycles = self._hit_cycles
        index = self._store.lookup(line)
        if index is not None:
            wait = self._fill_wait(line, now)
            self._store.touch(index)
            if wait > 0:
                self.stats.buffer_read_misses += 1
            else:
                self.stats.buffer_read_hits += 1
            if self._probing:
                self.probe.buffer_access(
                    "l0", False, wait == 0.0, line, wait + hit_cycles, hit_cycles, now
                )
            return wait + hit_cycles

        self.stats.buffer_read_misses += 1
        stall = self._fill(line, now)
        wait = self._fill_wait(line, now + stall)
        index = self._store.lookup(line)
        if index is not None:
            self._store.touch(index)
        latency = stall + max(hit_cycles, wait)
        if self._probing:
            self.probe.buffer_access("l0", False, False, line, latency, 0.0, now)
        return latency

    def _write_line(self, line: int, now: float) -> float:
        hit_cycles = self._hit_cycles
        index = self._store.lookup(line)
        if index is not None:
            wait = self._fill_wait(line, now)
            self._store.touch(index, dirty=True)
            self.stats.buffer_write_hits += 1
            if self._probing:
                self.probe.buffer_access(
                    "l0", True, True, line, wait + hit_cycles, hit_cycles, now
                )
            return wait + hit_cycles
        self.stats.buffer_write_misses += 1
        return self.backing.access(
            Access(line, self._line_bytes, AccessType.WRITE), now
        )

    def _fill(self, line: int, now: float) -> float:
        """Allocate ``line`` and start its narrow fill from the NVM DL1.

        Returns:
            Stall cycles from writing back a dirty victim (normally 0).
        """
        evicted = self._store.allocate(line)
        stall = self._handle_eviction(evicted, now)
        latency = self.backing.line_access(line, False, now + stall)
        self.stats.promotions += 1
        self.stats.promotion_cycles += int(stall + latency)
        self._fill_ready[line] = now + stall + latency
        if self._probing:
            self.probe.promotion("l0", line, stall + latency, now)
        return stall

    def _fill_wait(self, line: int, now: float) -> float:
        """Remaining fill time of ``line`` (0 once complete)."""
        ready = self._fill_ready.get(line)
        if ready is None:
            return 0.0
        if ready <= now:
            del self._fill_ready[line]
            return 0.0
        return ready - now

    def _handle_eviction(self, evicted: "EvictedWindow | None", now: float) -> float:
        if evicted is None:
            return 0.0
        self._fill_ready.pop(evicted.window_addr, None)
        if not evicted.dirty:
            return 0.0
        self.stats.buffer_writebacks += 1
        return self.backing.install_line(evicted.window_addr, True, now)
