"""Bench: Figure 9 — transformations on the SRAM baseline vs the proposal.

Paper shape: gains on both systems, "more pronounced in case of our NVM
based proposal", with the optimized SRAM system ending ~8% ahead.
"""

from repro.experiments import fig9

from conftest import run_once


def test_fig9(benchmark, runner, save):
    result = run_once(benchmark, fig9.run, runner=runner)
    save(result)
    avg = result.averages()
    assert avg["nvm_proposal_gain"] > avg["baseline_gain"]
    assert avg["baseline_gain"] > 0.0
