"""Trace serialisation: save/load architectural event streams.

Traces are the interchange format between the workload layer and the
timing model, so persisting them enables

- replaying the exact same stream across simulator versions (regression
  pinning),
- importing traces produced by external tools (a real gem5 run, a Pin
  tool) into this platform, and
- shipping trace corpora without shipping the generator.

Format: one event per line, whitespace-separated, ``#`` comments::

    # repro-trace v1
    L 100040 4        # load  addr size
    S 100140 8        # store addr size
    C 3               # compute ops
    B 1               # branch taken(1)/not(0)
    P 100180          # prefetch addr

Addresses and sizes are decimal.  The writer emits a header line; the
reader accepts files with or without it.
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator, List, Union

from ..errors import WorkloadError
from .trace import Branch, Compute, Load, Prefetch, Store, TraceEvent

HEADER = "# repro-trace v1"


def dump_trace(events: Iterable[TraceEvent], stream: IO[str]) -> int:
    """Write events to a text stream; returns the number written."""
    stream.write(HEADER + "\n")
    count = 0
    for ev in events:
        kind = type(ev)
        if kind is Load:
            stream.write(f"L {ev.addr} {ev.size}\n")
        elif kind is Store:
            stream.write(f"S {ev.addr} {ev.size}\n")
        elif kind is Compute:
            stream.write(f"C {ev.ops}\n")
        elif kind is Branch:
            stream.write(f"B {1 if ev.taken else 0}\n")
        elif kind is Prefetch:
            stream.write(f"P {ev.addr}\n")
        else:
            raise WorkloadError(f"cannot serialise event {ev!r}")
        count += 1
    return count


def save_trace(events: Iterable[TraceEvent], path: Union[str, "object"]) -> int:
    """Write events to ``path``; returns the number written."""
    with open(path, "w", encoding="ascii") as f:
        return dump_trace(events, f)


def parse_trace(stream: IO[str]) -> Iterator[TraceEvent]:
    """Yield events from a text stream (see module docstring for format).

    Raises:
        WorkloadError: On malformed lines, with the line number.
    """
    for lineno, raw in enumerate(stream, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        kind = fields[0].upper()
        try:
            if kind == "L" and len(fields) == 3:
                yield Load(int(fields[1]), int(fields[2]))
            elif kind == "S" and len(fields) == 3:
                yield Store(int(fields[1]), int(fields[2]))
            elif kind == "C" and len(fields) == 2:
                yield Compute(int(fields[1]))
            elif kind == "B" and len(fields) == 2:
                yield Branch(bool(int(fields[1])))
            elif kind == "P" and len(fields) == 2:
                yield Prefetch(int(fields[1]))
            else:
                raise ValueError("bad field count or kind")
        except ValueError as exc:
            raise WorkloadError(f"malformed trace line {lineno}: {raw.rstrip()!r}") from exc


def load_trace(path: Union[str, "object"]) -> List[TraceEvent]:
    """Read a whole trace file into a list."""
    with open(path, "r", encoding="ascii") as f:
        return list(parse_trace(f))
