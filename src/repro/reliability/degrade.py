"""Graceful degradation: disable-and-remap of worn cache line slots.

A cell whose writes keep failing verification is not going to get
better; burning the full retry budget on it for every store wastes bank
bandwidth forever.  The standard response (used by every NVM cache
proposal with a repair story) is to *retire* the line slot: mark the
(set, way) unusable, let the set run at reduced associativity, and remap
its traffic onto the surviving ways.  The performance cost is visible as
extra conflict misses rather than as a hard failure — exactly the
"graceful line degradation" a production deployment needs.

:class:`LineRetirementMap` tracks cumulative write-retry counts per line
slot and decides when a slot crosses the retirement threshold.  The
owning :class:`~repro.mem.cache.Cache` consults :meth:`is_disabled`
during way lookup and victim selection; the map itself never touches
tags or data.  One slot per set is always kept in service — a set with
zero usable ways would turn every access into an unservable miss — so a
pathologically bad array degrades to direct-mapped, never to broken.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigurationError


class LineRetirementMap:
    """Tracks per-slot retry wear and the set of retired slots.

    Args:
        sets: Number of cache sets.
        associativity: Ways per set.
        retire_after_retries: Cumulative write retries a slot sustains
            before it is retired; 0 disables retirement entirely.
    """

    def __init__(self, sets: int, associativity: int, retire_after_retries: int) -> None:
        if sets <= 0 or associativity <= 0:
            raise ConfigurationError("retirement map needs positive geometry")
        if retire_after_retries < 0:
            raise ConfigurationError(
                f"retirement threshold must be non-negative: {retire_after_retries}"
            )
        self._sets = sets
        self._assoc = associativity
        self._threshold = retire_after_retries
        self._retries: Dict[Tuple[int, int], int] = {}
        self._disabled: Dict[int, List[bool]] = {}

    @property
    def retired_lines(self) -> int:
        """Number of line slots currently retired."""
        return sum(sum(ways) for ways in self._disabled.values())

    def enabled_ways(self, index: int) -> int:
        """Usable ways remaining in set ``index``."""
        ways = self._disabled.get(index)
        if ways is None:
            return self._assoc
        return self._assoc - sum(ways)

    def is_disabled(self, index: int, way: int) -> bool:
        """True if slot ``(index, way)`` has been retired."""
        ways = self._disabled.get(index)
        return ways is not None and ways[way]

    def record_retries(self, index: int, way: int, retries: int) -> bool:
        """Accumulate ``retries`` on a slot; return True if it must retire.

        A slot is flagged for retirement when its cumulative retry count
        reaches the threshold — unless it is the last usable way of its
        set, which always stays in service (degraded, but functional).
        The caller performs the actual invalidation and then calls
        :meth:`retire`.
        """
        if retries <= 0 or self._threshold == 0:
            return False
        key = (index, way)
        total = self._retries.get(key, 0) + retries
        self._retries[key] = total
        if total < self._threshold or self.is_disabled(index, way):
            return False
        return self.enabled_ways(index) > 1

    def retire(self, index: int, way: int) -> None:
        """Mark slot ``(index, way)`` retired."""
        ways = self._disabled.setdefault(index, [False] * self._assoc)
        ways[way] = True

    def clear_retries(self) -> None:
        """Zero the per-slot retry counters, keeping retired slots retired.

        Used by :meth:`repro.mem.cache.Cache.clear_stats` between a
        warm-up phase and the measured run: retirement is architectural
        state (a retired slot stays out of service, like resident data
        stays resident), but the accumulated retry counts are statistics
        of the previous run and must not push a slot over the retirement
        threshold during the next one.
        """
        self._retries.clear()

    def reset(self) -> None:
        """Forget all wear state and return every slot to service."""
        self._retries.clear()
        self._disabled.clear()
