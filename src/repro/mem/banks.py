"""Banked-array timing: per-bank busy tracking and conflict stalls.

The paper simulates "a banked NVM array, so no conflict will exist if both
operations target different banks.  Otherwise, the processor must be
stalled".  :class:`BankTimer` implements exactly that contract: each bank
remembers the absolute cycle until which it is occupied; an access to a
busy bank waits, and the wait is reported so callers can account it as a
stall.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ConfigurationError
from ..obs.probe import NULL_PROBE, Probe
from ..units import is_power_of_two


class BankTimer:
    """Tracks occupancy of ``n`` independent banks.

    Bank selection is line interleaving: consecutive cache lines map to
    consecutive banks, which spreads a streaming access pattern across all
    banks and lets a wide VWB promotion overlap with a demand access to a
    different bank.

    The model assumes callers present accesses with non-decreasing ``now``
    (true for the in-order core); under that assumption a single
    ``busy_until`` per bank is an exact conflict model.
    """

    def __init__(self, banks: int, line_bytes: int) -> None:
        if not is_power_of_two(banks):
            raise ConfigurationError(f"bank count must be a power of two: {banks}")
        if line_bytes <= 0:
            raise ConfigurationError(f"line size must be positive: {line_bytes}")
        self._line_bytes = line_bytes
        self._busy_until: List[float] = [0.0] * banks
        self._probe: Probe = NULL_PROBE
        self._probing = False
        self._owner = ""

    def set_probe(self, probe: Probe, owner: str) -> None:
        """Attach ``probe``; conflicts are reported under ``owner``."""
        self._probe = probe
        self._probing = probe.enabled
        self._owner = owner

    @property
    def banks(self) -> int:
        """Number of banks."""
        return len(self._busy_until)

    def bank_of(self, addr: int) -> int:
        """Bank index holding the line that contains ``addr``."""
        return (addr // self._line_bytes) % len(self._busy_until)

    def reserve(self, addr: int, now: float, occupancy: float) -> Tuple[float, float]:
        """Occupy the bank of ``addr`` for ``occupancy`` cycles.

        Args:
            now: Cycle at which the access wants to start.
            occupancy: Cycles the bank stays busy once the access starts.

        Returns:
            ``(wait, finish)``: cycles spent waiting for the bank to free,
            and the absolute cycle at which the bank operation completes.
        """
        if occupancy < 0:
            raise ConfigurationError(f"occupancy must be non-negative: {occupancy}")
        bank = self.bank_of(addr)
        start = max(now, self._busy_until[bank])
        finish = start + occupancy
        self._busy_until[bank] = finish
        wait = start - now
        if self._probing and wait > 0.0:
            self._probe.bank_conflict(self._owner, addr, wait, now)
        return wait, finish

    def reserve_range(
        self, addr: int, n_lines: int, now: float, occupancy_per_line: float
    ) -> Tuple[float, float]:
        """Occupy the banks of ``n_lines`` consecutive lines.

        Used for wide VWB promotions: lines living in distinct banks are
        read in parallel (total time = per-line occupancy plus any waits);
        lines that collide in one bank serialise.

        Returns:
            ``(wait, finish)`` where ``wait`` is the longest time any of
            the line reads had to wait and ``finish`` is when the last
            line's read completes.
        """
        if n_lines <= 0:
            raise ConfigurationError(f"line count must be positive: {n_lines}")
        worst_wait = 0.0
        last_finish = now
        per_bank_extra: dict = {}
        for i in range(n_lines):
            line_addr = addr + i * self._line_bytes
            bank = self.bank_of(line_addr)
            # Serialise multiple lines landing in the same bank.
            start = max(now, self._busy_until[bank]) + per_bank_extra.get(bank, 0.0)
            finish = start + occupancy_per_line
            per_bank_extra[bank] = per_bank_extra.get(bank, 0.0) + occupancy_per_line
            worst_wait = max(worst_wait, start - now)
            last_finish = max(last_finish, finish)
        for i in range(n_lines):
            bank = self.bank_of(addr + i * self._line_bytes)
            self._busy_until[bank] = max(self._busy_until[bank], now + per_bank_extra[bank])
        if self._probing and worst_wait > 0.0:
            self._probe.bank_conflict(self._owner, addr, worst_wait, now)
        return worst_wait, last_finish

    def next_free(self, addr: int, now: float) -> float:
        """Cycles until the bank of ``addr`` is free (0 if idle)."""
        return max(0.0, self._busy_until[self.bank_of(addr)] - now)

    def reset(self) -> None:
        """Mark every bank idle (used between benchmark runs)."""
        for i in range(len(self._busy_until)):
            self._busy_until[i] = 0.0
