"""Named optimization levels matching the paper's configurations.

Figure 5 compares the NVM+VWB system "with and without transformations
and optimizations"; Figure 6 breaks the gain into prefetching,
vectorization and others; Figure 9 applies the same full pipeline to the
SRAM baseline.  :class:`OptLevel` names those configurations:

========== =======================================================
Level      Passes applied
========== =======================================================
NONE       (nothing — the untransformed kernel)
PREFETCH   InsertPrefetch only
VECTORIZE  Vectorize only
OTHERS     BranchOptimize only
FULL       InsertPrefetch + Vectorize + BranchOptimize
========== =======================================================
"""

from __future__ import annotations

import enum
from typing import List

from ..errors import TransformError
from ..workloads.ir import Program
from .base import Transform, apply_all
from .branchopt import BranchOptimize
from .prefetch import InsertPrefetch
from .vectorize import Vectorize


class OptLevel(enum.Enum):
    """Named transformation bundles used throughout the experiments."""

    NONE = "none"
    PREFETCH = "prefetch"
    VECTORIZE = "vectorize"
    OTHERS = "others"
    FULL = "full"


def transforms_for_level(level: OptLevel) -> List[Transform]:
    """The pass list for a level (empty for :attr:`OptLevel.NONE`)."""
    if level is OptLevel.NONE:
        return []
    if level is OptLevel.PREFETCH:
        return [InsertPrefetch()]
    if level is OptLevel.VECTORIZE:
        return [Vectorize()]
    if level is OptLevel.OTHERS:
        return [BranchOptimize()]
    if level is OptLevel.FULL:
        return [InsertPrefetch(), Vectorize(), BranchOptimize()]
    raise TransformError(f"unknown optimization level {level!r}")


def optimize(program: Program, level: OptLevel) -> Program:
    """Apply an optimization level to a program (pure)."""
    passes = transforms_for_level(level)
    if not passes:
        return program.clone()
    return apply_all(program, passes)
