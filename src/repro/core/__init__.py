"""The paper's contribution: the Very Wide Buffer D-cache organisation.

Modules:

- :mod:`repro.core.frontend` — the pluggable D-cache front-end interface
  shared by all four organisations the paper evaluates;
- :mod:`repro.core.dropin` — the plain front-end (SRAM baseline and the
  drop-in NVM replacement of Figure 1);
- :mod:`repro.core.vwb` — the Very Wide Buffer structure itself;
- :mod:`repro.core.vwb_frontend` — the proposed NVM DL1 + VWB organisation
  with the paper's load/store policy (Section IV);
- :mod:`repro.core.l0` — the L0 filter-cache comparison point (Figure 8);
- :mod:`repro.core.emshr` — the Enhanced-MSHR comparison point (Figure 8).
"""

from .frontend import DCacheFrontend, FrontendStats
from .dropin import PlainFrontend
from .vwb import VeryWideBuffer, VWBConfig
from .vwb_frontend import VWBFrontend
from .l0 import L0Frontend
from .emshr import EMSHRFrontend
from .hybrid import HybridFrontend

__all__ = [
    "DCacheFrontend",
    "FrontendStats",
    "PlainFrontend",
    "VeryWideBuffer",
    "VWBConfig",
    "VWBFrontend",
    "L0Frontend",
    "EMSHRFrontend",
    "HybridFrontend",
]
