"""PolyBench ``lu``: in-place LU decomposition (no pivoting).

Extra kernel: a doubly-triangular elimination whose inner loop's base
row changes every outer step — the richest mix of shrinking trip counts
and in-place updates in the suite.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Loop, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 32}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the lu program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n = dims["n"]
    i, j, k = Var("i"), Var("j"), Var("k")
    a = Array("A", (n, n))
    body = [
        loop(
            k,
            n,
            [
                # Scale the column below the pivot.
                Loop(
                    i,
                    k + 1,
                    n,
                    [stmt(reads=[a[i, k], a[k, k]], writes=[a[i, k]], flops=1, label="scale")],
                ),
                # Rank-1 update of the trailing submatrix.
                Loop(
                    i,
                    k + 1,
                    n,
                    [
                        Loop(
                            j,
                            k + 1,
                            n,
                            [
                                stmt(
                                    reads=[a[i, j], a[i, k], a[k, j]],
                                    writes=[a[i, j]],
                                    flops=2,
                                    label="update",
                                )
                            ],
                        )
                    ],
                ),
            ],
        )
    ]
    return Program("lu", body)
