"""Run manifests: the provenance record of what produced a sweep's results.

A manifest is one JSON document written next to a sweep's telemetry
(``manifest.json``) answering, for every simulation point, *what code,
configuration, technology parameters and seed produced this number* —
the record a design-space study needs before its results can be trusted
or reproduced:

- the package version and the whole-source :func:`~repro.exec.cache.
  code_fingerprint` (the same value hashed into every cache key);
- host information (platform, Python, hostname, cpu count);
- the engine configuration and its final :class:`~repro.exec.engine.
  ExecStats` counters plus the metrics-registry snapshot;
- per point: label, kernel, configuration front-end/technology,
  optimization level, dataset size, fault seed, content-addressed cache
  key, hit/run status, executing worker pid and wall seconds;
- the resolved technology parameter sets the points used, canonicalized
  exactly like the cache-key material.

Manifests validate against :data:`MANIFEST_SCHEMA` (a small, dependency
-free subset of JSON Schema) both when written and in the test suite,
so the format is load-bearing, not decorative.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Union

#: Version of the manifest document layout.
MANIFEST_FORMAT_VERSION = 1

#: File name a manifest is written to inside a telemetry directory.
MANIFEST_FILENAME = "manifest.json"

#: Subset-of-JSON-Schema description the validator enforces: ``type``,
#: ``required``, ``properties``, ``items`` and ``enum`` keywords only.
MANIFEST_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "format",
        "created",
        "command",
        "package",
        "code_fingerprint",
        "host",
        "engine",
        "metrics",
        "technologies",
        "points",
    ],
    "properties": {
        "format": {"type": "integer"},
        "created": {"type": "string"},
        "command": {"type": "string"},
        "argv": {"type": "array", "items": {"type": "string"}},
        "package": {
            "type": "object",
            "required": ["name", "version"],
            "properties": {
                "name": {"type": "string"},
                "version": {"type": "string"},
            },
        },
        "code_fingerprint": {"type": "string"},
        "host": {
            "type": "object",
            "required": ["platform", "python", "hostname", "pid"],
            "properties": {
                "platform": {"type": "string"},
                "python": {"type": "string"},
                "hostname": {"type": "string"},
                "pid": {"type": "integer"},
                "cpu_count": {"type": "integer"},
            },
        },
        "engine": {
            "type": "object",
            "required": ["jobs", "cache_dir", "stats"],
            "properties": {
                "jobs": {"type": "integer"},
                "cache_dir": {"type": ["string", "null"]},
                "stats": {"type": "object"},
            },
        },
        "metrics": {"type": "object"},
        "technologies": {"type": "object"},
        "points": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "label",
                    "kernel",
                    "frontend",
                    "technology",
                    "level",
                    "size",
                    "seed",
                    "cache_key",
                    "status",
                    "worker_pid",
                    "wall_s",
                ],
                "properties": {
                    "label": {"type": "string"},
                    "kernel": {"type": "string"},
                    "frontend": {"type": "string"},
                    "technology": {"type": "string"},
                    "level": {"type": "string"},
                    "size": {"type": "string"},
                    "seed": {"type": ["integer", "null"]},
                    "cache_key": {"type": "string"},
                    "status": {"enum": ["hit", "journal", "run", "failed"]},
                    "worker_pid": {"type": "integer"},
                    "wall_s": {"type": "number"},
                    "start_s": {"type": "number"},
                    "cycles": {"type": "number"},
                },
            },
        },
        "failures": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["label", "kernel", "cache_key", "kind", "attempts"],
                "properties": {
                    "label": {"type": "string"},
                    "kernel": {"type": "string"},
                    "cache_key": {"type": "string"},
                    "kind": {"enum": ["error", "timeout", "crash", "poison"]},
                    "attempts": {"type": "integer"},
                    "exception": {"type": "string"},
                    "message": {"type": "string"},
                    "traceback": {"type": "string"},
                    "worker_pid": {"type": "integer"},
                },
            },
        },
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _check(value: Any, schema: Dict[str, Any], where: str) -> None:
    """Recursive worker of :func:`validate_manifest`."""
    expected = schema.get("type")
    if expected is not None:
        names = expected if isinstance(expected, list) else [expected]
        ok = False
        for name in names:
            python_type = _TYPES[name]
            if isinstance(value, python_type) and not (
                name in ("integer", "number") and isinstance(value, bool)
            ):
                ok = True
                break
        if not ok:
            raise ValueError(f"{where}: expected {'/'.join(names)}, got {type(value).__name__}")
    if "enum" in schema and value not in schema["enum"]:
        raise ValueError(f"{where}: {value!r} not one of {schema['enum']}")
    if isinstance(value, dict):
        for field in schema.get("required", ()):
            if field not in value:
                raise ValueError(f"{where}: missing required field {field!r}")
        for field, sub in schema.get("properties", {}).items():
            if field in value:
                _check(value[field], sub, f"{where}.{field}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _check(item, schema["items"], f"{where}[{i}]")


def validate_manifest(doc: Dict[str, Any]) -> None:
    """Validate a manifest document against :data:`MANIFEST_SCHEMA`.

    Parameters
    ----------
    doc : dict
        A manifest as built by :func:`build_manifest` or loaded from
        disk.

    Raises
    ------
    ValueError
        Naming the offending path on the first violation.
    """
    _check(doc, MANIFEST_SCHEMA, "manifest")
    if doc["format"] != MANIFEST_FORMAT_VERSION:
        raise ValueError(
            f"manifest.format: expected {MANIFEST_FORMAT_VERSION}, got {doc['format']!r}"
        )


def build_manifest(
    command: str,
    engine: "ExecutionEngine",
    argv: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Assemble the provenance manifest of one engine's work.

    Parameters
    ----------
    command : str
        The CLI command (experiment name) that drove the sweep.
    engine : ExecutionEngine
        The engine whose point records, stats and metrics to capture.
        Point records are only collected while telemetry is enabled.
    argv : list of str, optional
        The raw command line, for the record.

    Returns
    -------
    dict
        A schema-valid manifest document.
    """
    from .. import __version__
    from ..exec.cache import code_fingerprint

    stats = engine.stats
    doc: Dict[str, Any] = {
        "format": MANIFEST_FORMAT_VERSION,
        "created": datetime.now(timezone.utc).isoformat(),
        "command": command,
        "argv": list(argv) if argv is not None else [],
        "package": {"name": "repro", "version": __version__},
        "code_fingerprint": code_fingerprint(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "hostname": platform.node(),
            "pid": os.getpid(),
            "cpu_count": os.cpu_count() or 1,
        },
        "engine": {
            "jobs": engine.jobs,
            "cache_dir": str(engine.cache.root) if engine.cache is not None else None,
            "stats": dataclasses.asdict(stats),
        },
        "metrics": engine.metrics.snapshot(),
        "technologies": dict(sorted(engine.technologies.items())),
        "points": list(engine.point_records),
        "failures": [failure.as_dict() for failure in getattr(engine, "failures", [])],
    }
    validate_manifest(doc)
    return doc


def write_manifest(doc: Dict[str, Any], directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Validate and write ``<directory>/manifest.json``.

    Parameters
    ----------
    doc : dict
        The manifest document.
    directory : str or pathlib.Path
        Telemetry directory (created if missing).

    Returns
    -------
    pathlib.Path
        The written file.
    """
    validate_manifest(doc)
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / MANIFEST_FILENAME
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Load and validate a manifest from disk.

    Parameters
    ----------
    path : str or pathlib.Path
        Either the ``manifest.json`` file or the telemetry directory
        containing it.

    Returns
    -------
    dict
        The validated manifest.

    Raises
    ------
    ValueError
        If the file is not valid JSON or fails schema validation.
    OSError
        If the file cannot be read.
    """
    p = pathlib.Path(path)
    if p.is_dir():
        p = p / MANIFEST_FILENAME
    doc = json.loads(p.read_text())
    validate_manifest(doc)
    return doc


def render_manifest(doc: Dict[str, Any]) -> str:
    """Human-readable summary of a manifest, for ``repro status``.

    Parameters
    ----------
    doc : dict
        A validated manifest.

    Returns
    -------
    str
        A few aligned lines: provenance, engine counters, worker
        utilization.
    """
    stats = doc["engine"]["stats"]
    points = doc["points"]
    workers = sorted({p["worker_pid"] for p in points if p["status"] == "run"})
    elapsed = stats.get("elapsed", 0.0)
    busy = stats.get("busy", 0.0)
    jobs = doc["engine"]["jobs"]
    utilization = 100.0 * busy / (elapsed * jobs) if elapsed > 0 and jobs else 0.0
    lines = [
        f"command: {doc['command']} (repro {doc['package']['version']})",
        f"created: {doc['created']} on {doc['host']['hostname']} "
        f"({doc['host']['platform']}, python {doc['host']['python']})",
        f"code fingerprint: {doc['code_fingerprint'][:16]}…",
        f"points: {stats['points']} — {stats['hits']} hits, {stats['executed']} executed, "
        f"{stats['stale']} stale, {stats['corrupt']} corrupt cache entries",
        f"workers: {len(workers) or 1} process(es), jobs={jobs}, "
        f"utilization {utilization:.0f}% over {elapsed:.1f}s",
    ]
    resilience = [
        (label, stats.get(key, 0))
        for label, key in (
            ("journal replays", "journal_hits"),
            ("retries", "retries"),
            ("timeouts", "timeouts"),
            ("worker restarts", "worker_restarts"),
            ("quarantined", "quarantined"),
            ("failed", "failed"),
        )
        if stats.get(key, 0)
    ]
    if resilience:
        lines.append(
            "resilience: " + ", ".join(f"{value} {label}" for label, value in resilience)
        )
    for failure in doc.get("failures", []):
        what = failure.get("message", "")
        if failure.get("exception"):
            what = f"{failure['exception']}: {what}"
        lines.append(
            f"failed: {failure['label']} — {failure['kind']} "
            f"after {failure['attempts']} attempt(s) — {what}"
        )
    return "\n".join(lines)
