"""Columnar trace encoding: round-trip and bit-exact replay contract.

The contract pinned here is what lets every memo site hold
:class:`~repro.workloads.encode.EncodedTrace` instead of event lists:

- ``encode -> decode`` reproduces the exact event sequence (types and
  every field) for every PolyBench kernel at every optimization level,
  IR annotations included;
- replaying the encoded form produces a ``RunResult`` **equal as a
  whole object** to object replay on every front-end, with and without
  fault injection, and with a probe attached;
- replay never mutates trace events (several systems share one trace).
"""

from __future__ import annotations

import pytest

from repro.cpu.system import System, SystemConfig
from repro.obs import RecordingProbe
from repro.reliability.faults import ReliabilityConfig
from repro.transforms.pipeline import OptLevel, optimize
from repro.workloads import build_kernel, kernel_names, materialize_trace
from repro.workloads.encode import EncodedTrace, encode_events, encode_trace
from repro.workloads.interp import TraceConfig
from repro.workloads.trace import (
    BRANCH_NOT_TAKEN,
    BRANCH_TAKEN,
    Branch,
    Compute,
    IRMark,
    Load,
    Prefetch,
    Store,
    trace_summary,
)

CONFIG_NAMES = ("sram", "dropin", "vwb", "l0", "emshr", "hybrid")

SYSTEMS = {
    "sram": lambda: SystemConfig(technology="sram", frontend="plain"),
    "dropin": lambda: SystemConfig(technology="stt-mram", frontend="plain"),
    "vwb": lambda: SystemConfig(technology="stt-mram", frontend="vwb"),
    "l0": lambda: SystemConfig(technology="stt-mram", frontend="l0"),
    "emshr": lambda: SystemConfig(technology="stt-mram", frontend="emshr"),
    "hybrid": lambda: SystemConfig(technology="stt-mram", frontend="hybrid"),
}


def _program(kernel: str, level: OptLevel):
    base = build_kernel(kernel)
    return optimize(base, level) if level is not OptLevel.NONE else base


def _assert_same_events(decoded, events):
    assert len(decoded) == len(events)
    for got, want in zip(decoded, events):
        assert type(got) is type(want)
        if isinstance(want, Load) or isinstance(want, Store):
            assert (got.addr, got.size) == (want.addr, want.size)
        elif isinstance(want, Compute):
            assert got.ops == want.ops
        elif isinstance(want, Branch):
            assert got.taken == want.taken
        elif isinstance(want, Prefetch):
            assert got.addr == want.addr
        else:
            assert isinstance(want, IRMark)
            assert got.label == want.label


class TestRoundTrip:
    @pytest.mark.parametrize("kernel", kernel_names())
    @pytest.mark.parametrize("level", list(OptLevel))
    def test_every_kernel_every_level(self, kernel, level):
        program = _program(kernel, level)
        events = materialize_trace(program)
        encoded = encode_trace(program)
        _assert_same_events(encoded.decode(), events)

    @pytest.mark.parametrize("kernel", ("gemm", "mvt", "trmm"))
    def test_annotated_traces(self, kernel):
        config = TraceConfig(annotate_ir=True)
        program = _program(kernel, OptLevel.FULL)
        events = materialize_trace(program, config)
        encoded = encode_trace(program, config)
        assert any(isinstance(ev, IRMark) for ev in events)
        _assert_same_events(encoded.decode(), events)

    def test_iteration_matches_decode(self):
        program = _program("atax", OptLevel.VECTORIZE)
        encoded = encode_trace(program)
        assert len(encoded) == len(encoded.decode())
        _assert_same_events(list(encoded), encoded.decode())

    def test_encode_events_matches_encode_trace(self):
        program = _program("bicg", OptLevel.NONE)
        from_list = encode_events(materialize_trace(program))
        from_program = encode_trace(program)
        _assert_same_events(from_list.decode(), from_program.decode())


class TestBitExactReplay:
    @pytest.mark.parametrize("config", CONFIG_NAMES)
    def test_runresult_equal_all_frontends(self, config):
        program = _program("gemm", OptLevel.NONE)
        events = materialize_trace(program)
        encoded = encode_trace(program)
        obj = System(SYSTEMS[config]()).run(events)
        enc = System(SYSTEMS[config]()).run(encoded)
        assert obj == enc

    @pytest.mark.parametrize("config", CONFIG_NAMES)
    def test_runresult_equal_optimized(self, config):
        program = _program("trmm", OptLevel.FULL)
        events = materialize_trace(program)
        encoded = encode_trace(program)
        obj = System(SYSTEMS[config]()).run(events)
        enc = System(SYSTEMS[config]()).run(encoded)
        assert obj == enc

    @pytest.mark.parametrize("config", ("dropin", "vwb"))
    def test_runresult_equal_with_fault_injection(self, config):
        base = SYSTEMS[config]()
        from dataclasses import replace

        faulty = replace(
            base, reliability=ReliabilityConfig(seed=7, write_error_rate=1e-4)
        )
        program = _program("atax", OptLevel.NONE)
        events = materialize_trace(program)
        encoded = encode_trace(program)
        obj = System(faulty).run(events)
        enc = System(faulty).run(encoded)
        assert obj == enc
        assert enc.reliability_stats is not None

    def test_runresult_equal_with_probe(self):
        program = _program("gemm", OptLevel.NONE)
        events = materialize_trace(program, TraceConfig(annotate_ir=True))
        encoded = encode_trace(program, TraceConfig(annotate_ir=True))
        p_obj, p_enc = RecordingProbe(), RecordingProbe()
        obj = System(SYSTEMS["vwb"]()).run(events, probe=p_obj)
        enc = System(SYSTEMS["vwb"]()).run(encoded, probe=p_enc)
        assert obj == enc
        assert p_obj.ledger.nonzero() == p_enc.ledger.nonzero()

    def test_warm_runs_stay_exact(self):
        program = _program("mvt", OptLevel.NONE)
        events = materialize_trace(program)
        encoded = encode_trace(program)
        s_obj, s_enc = System(SYSTEMS["vwb"]()), System(SYSTEMS["vwb"]())
        s_obj.run(events)
        s_enc.run(encoded)
        assert s_obj.run(events, reset=False) == s_enc.run(encoded, reset=False)


class TestEventImmutability:
    def test_replay_does_not_mutate_shared_events(self):
        events = materialize_trace(build_kernel("gemm"))
        def freeze():
            return [
                (type(ev).__name__,)
                + tuple(getattr(ev, f) for f in type(ev).__slots__)
                for ev in events
            ]

        snapshot = freeze()
        for config in CONFIG_NAMES:
            System(SYSTEMS[config]()).run(events)
        assert freeze() == snapshot

    def test_branch_singletons_are_interned(self):
        events = materialize_trace(build_kernel("gemm"))
        branches = [ev for ev in events if isinstance(ev, Branch)]
        assert branches
        assert all(ev is BRANCH_TAKEN or ev is BRANCH_NOT_TAKEN for ev in branches)

    def test_decoded_branches_use_singletons(self):
        encoded = encode_trace(build_kernel("gemm"))
        branches = [ev for ev in encoded if isinstance(ev, Branch)]
        assert branches
        assert all(ev is BRANCH_TAKEN or ev is BRANCH_NOT_TAKEN for ev in branches)


class TestSummaryAndSize:
    def test_summary_matches_object_trace(self):
        program = _program("gemver", OptLevel.FULL)
        events = materialize_trace(program, TraceConfig(annotate_ir=True))
        encoded = encode_trace(program, TraceConfig(annotate_ir=True))
        assert trace_summary(encoded) == trace_summary(events)

    def test_encoded_form_is_compact(self):
        encoded = encode_trace(build_kernel("gemm"))
        # Well under the ~56 bytes a single Python object costs per event.
        assert 0 < encoded.nbytes < 24 * len(encoded)
