"""The proposed NVM DL1 organisation: STT-MRAM array + Very Wide Buffer.

Implements the load/store policy of Section IV:

Load: "The VWB is always checked for the data first during a normal read.
On encountering a miss, the NVM DL1 is checked.  If the data is present,
then it is read from the NVM DL1 and also written into the VWB always.
The evicted data from the VWB is stored in the NVM DL1.  If the data is
not present in the NVM DL1 also, then the miss is served from the next
cache level, and the cache line containing the data block is then
transferred into the processor and the VWB."

Store: "The data block in the DL1 is only updated via the VWB if it's
already present in it.  Otherwise, it's directly updated via the
processor ... If it's a miss, we follow the write allocate policy for the
data cache array and a non allocate policy for the VWB."

Timing: a VWB (or fill-buffer) hit costs one datapath cycle.  A miss
triggers a *promotion* — a wide read of the whole window through the NVM
array's wide interface ("the promotion may take as long as 4 cache
cycles").  Promotions occupy the NVM banks, so a demand access racing a
promotion to the same bank stalls, exactly as the paper describes.

Promotions land in a small set of *fill buffers* first — the mechanism
behind the paper's "data can be written into and read from the VWB at the
same time": while one wide word streams in from the array, the datapath
keeps reading through the post-decode MUX.  A staged window serves
demand accesses as soon as its wide read completes and is committed into
a VWB line lazily, when its buffer slot is needed for a newer promotion.
Software prefetches (Section V) simply start promotions early, which is
why prefetching is the largest contributor in Figure 6.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..errors import ConfigurationError
from ..mem.cache import Cache
from ..mem.request import Access, AccessType
from .frontend import DCacheFrontend
from .vwb import EvictedWindow, VeryWideBuffer, VWBConfig


class _PendingWindow:
    """A promotion staged in a fill buffer."""

    __slots__ = ("result", "dirty")

    def __init__(self, result) -> None:
        self.result = result
        self.dirty = False

    @property
    def ready_at(self) -> float:
        """Cycle the whole wide word is staged."""
        return self.result.ready_at


class VWBFrontend(DCacheFrontend):
    """NVM DL1 + Very Wide Buffer (the paper's proposal).

    Args:
        backing: The NVM DL1 array.
        config: VWB geometry (2 Kbit, two wide lines by default).
        fill_buffers: Wide-word staging slots between the NVM array and
            the VWB lines, sized like an MSHR file (6 by default) so one
            prefetched window per loop stream can be in flight at once.
    """

    name = "vwb"

    def __init__(
        self,
        backing: Cache,
        config: VWBConfig = VWBConfig(),
        fill_buffers: int = 6,
    ) -> None:
        super().__init__(backing)
        if fill_buffers < 1:
            raise ConfigurationError(f"need at least one fill buffer, got {fill_buffers}")
        self.vwb = VeryWideBuffer(config)
        # Cached per-access constants (the config is frozen).
        self._hit_cycles = float(config.hit_cycles)
        self._lines_per_window = config.lines_per_window
        self._fill_buffers = fill_buffers
        #: Staged promotions in FIFO order: window base -> state.
        self._pending: "OrderedDict[int, _PendingWindow]" = OrderedDict()

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def read(self, addr: int, size: int, now: float) -> float:
        """Load: VWB, then fill buffers, then promote from the NVM DL1."""
        total = 0.0
        t = now
        for window in self._windows_of(addr, size):
            latency = self._read_window(window, max(addr, window), t)
            total += latency
            t += latency
        return total

    def write(self, addr: int, size: int, now: float) -> float:
        """Store: update VWB/fill buffer if present; else write the array."""
        total = 0.0
        t = now
        for window in self._windows_of(addr, size):
            latency = self._write_window(window, addr, size, t)
            total += latency
            t += latency
        return total

    def prefetch(self, addr: int, now: float) -> float:
        """Software prefetch: start a wide promotion into a fill buffer."""
        self.stats.prefetches_issued += 1
        window = self.vwb.window_addr(addr)
        if self.vwb.contains(window) or window in self._pending:
            self.stats.prefetches_useless += 1
            return 0.0
        stall = self._stage_promotion(window, now)
        return stall

    def reset(self) -> None:
        """Reset the VWB, fill buffers, stats and the backing cache."""
        super().reset()
        self.vwb.reset()
        self._pending.clear()

    def clear_stats(self) -> None:
        """Keep VWB contents but drop in-flight promotions and stats."""
        super().clear_stats()
        self._pending.clear()

    @property
    def pending_windows(self) -> int:
        """Staged promotions not yet committed (exposed for tests)."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _windows_of(self, addr: int, size: int):
        """Window base addresses an access touches, lowest first."""
        wb = self.vwb._window_bytes
        first = (addr // wb) * wb
        last = ((addr + size - 1) // wb) * wb
        return range(first, last + wb, wb)

    def _read_window(self, window: int, addr: int, now: float) -> float:
        hit_cycles = self._hit_cycles
        line = self.backing.line_addr(addr)
        index = self.vwb.lookup(window)
        if index is not None:
            self.vwb.touch(index)
            self.stats.buffer_read_hits += 1
            if self._probing:
                self.probe.buffer_access(
                    "vwb", False, True, addr, hit_cycles, hit_cycles, now
                )
            return hit_cycles

        staged = self._pending.get(window)
        if staged is not None:
            # Served straight out of the fill buffer through the
            # post-decode MUX ("data can be written into and read from
            # the VWB at the same time"); the window moves into a VWB
            # line only when its buffer slot is displaced.  Waits are
            # critical-line-first: only the requested line gates the core.
            wait = staged.result.wait_for(line, now)
            if wait > 0:
                self.stats.buffer_read_misses += 1
            else:
                self.stats.buffer_read_hits += 1
            if self._probing:
                self.probe.buffer_access(
                    "vwb", False, wait == 0.0, addr, wait + hit_cycles, hit_cycles, now
                )
            return wait + hit_cycles

        # True miss: demand promotion — the line is "written into the VWB
        # always" (Section IV) and the processor receives its word as soon
        # as the critical line of the wide read lands.
        self.stats.buffer_read_misses += 1
        stall = self._handle_eviction(self.vwb.allocate(window), now)
        result = self.backing.read_lines_wide(
            window, self._lines_per_window, now + stall, critical_addr=addr
        )
        self.stats.promotions += 1
        self.stats.promotion_cycles += int(stall + result.latency)
        latency = stall + max(hit_cycles, result.wait_for(line, now + stall))
        if self._probing:
            self.probe.promotion("vwb", window, stall + result.latency, now)
            self.probe.buffer_access("vwb", False, False, addr, latency, 0.0, now)
        return latency

    def _write_window(self, window: int, addr: int, size: int, now: float) -> float:
        hit_cycles = self._hit_cycles
        index = self.vwb.lookup(window)
        if index is not None:
            self.vwb.touch(index, dirty=True)
            self.stats.buffer_write_hits += 1
            if self._probing:
                self.probe.buffer_access(
                    "vwb", True, True, addr, hit_cycles, hit_cycles, now
                )
            return hit_cycles

        staged = self._pending.get(window)
        if staged is not None:
            # Merge the store into the staged wide word once its target
            # line arrives.
            wait = staged.result.wait_for(self.backing.line_addr(max(addr, window)), now)
            staged.dirty = True
            self.stats.buffer_write_hits += 1
            if self._probing:
                self.probe.buffer_access(
                    "vwb", True, True, addr, wait + hit_cycles, hit_cycles, now
                )
            return wait + hit_cycles

        # Non-allocate for the VWB: the store goes straight to the NVM
        # array, which is write-back/write-allocate.
        self.stats.buffer_write_misses += 1
        span = min(size, window + self.vwb._window_bytes - addr)
        start = max(addr, window)
        return self.backing.access(Access(start, max(1, span), AccessType.WRITE), now)

    def _stage_promotion(self, window: int, now: float) -> float:
        """Start a *prefetch* wide read of ``window`` into a fill buffer.

        Demand promotions commit straight into a VWB line (the paper's
        always-promote policy); only software prefetches stage here, so
        a loop that issues no prefetches sees exactly the two VWB lines.
        A full fill-buffer file is drained by committing *completed*
        promotions into VWB lines; if every buffered promotion is still
        in flight, the prefetch is dropped — this paces the software
        prefetch stream to what the banked NVM array can actually serve.

        Returns:
            Stall cycles visible to the requester from commit write-backs
            (normally zero).
        """
        stall = 0.0
        while len(self._pending) >= self._fill_buffers:
            _, oldest = next(iter(self._pending.items()))
            if oldest.ready_at > now + stall:
                # No free fill buffer: the hint is dropped in hardware.
                self.stats.prefetches_useless += 1
                return stall
            stall += self._commit_oldest(now + stall)
        result = self.backing.read_lines_wide(
            window, self._lines_per_window, now + stall
        )
        self.stats.promotions += 1
        self.stats.promotion_cycles += int(stall + result.latency)
        self._pending[window] = _PendingWindow(result)
        if self._probing:
            self.probe.promotion("vwb", window, stall + result.latency, now)
        return stall

    def _commit_oldest(self, now: float) -> float:
        """Displace the oldest staged window into a VWB line."""
        window, staged = self._pending.popitem(last=False)
        return self._install(window, staged.dirty, now)

    def _install(self, window: int, dirty: bool, now: float) -> float:
        """Allocate ``window`` in the VWB, preserving its dirty state."""
        evicted = self.vwb.allocate(window)
        if dirty:
            index = self.vwb.lookup(window)
            if index is not None:
                self.vwb.touch(index, dirty=True)
        return self._handle_eviction(evicted, now)

    def _handle_eviction(self, evicted: Optional[EvictedWindow], now: float) -> float:
        """Write a displaced dirty window back into the NVM DL1."""
        if evicted is None or not evicted.dirty:
            return 0.0
        self.stats.buffer_writebacks += 1
        stall = 0.0
        line_bytes = self.vwb.config.cache_line_bytes
        for i in range(self.vwb.config.lines_per_window):
            stall += self.backing.install_line(
                evicted.window_addr + i * line_bytes, True, now + stall
            )
        return stall
