"""Result containers and text rendering for the experiment suite.

Every experiment returns a :class:`FigureResult`: labelled series over
the kernel list (or a parameter sweep), plus free-text notes recording
what the paper reports for the same figure.  :func:`render_figure` turns
it into an aligned text table with an AVERAGE row — the closest text
analogue of the paper's bar charts — and optional ASCII bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class FigureResult:
    """One reproduced table/figure.

    Attributes
    ----------
    name : str
        Experiment id (``"fig5"``).
    title : str
        Human title matching the paper's caption.
    labels : list of str
        Row labels (kernels, or sweep points).
    series : dict
        Ordered mapping column -> per-label values.
    unit : str
        Unit of the values (``"%"`` for penalties).
    notes : list of str
        Paper-vs-measured commentary lines.
    average_row : bool
        Append an AVERAGE row (the paper's figures do).
    """

    name: str
    title: str
    labels: List[str]
    series: "Dict[str, List[float]]"
    unit: str = "%"
    notes: List[str] = field(default_factory=list)
    average_row: bool = True

    def averages(self) -> Dict[str, float]:
        """Mean of every series (empty series average to 0)."""
        return {
            key: (sum(vals) / len(vals) if vals else 0.0) for key, vals in self.series.items()
        }

    def series_for(self, key: str) -> List[float]:
        """Values of one series (KeyError with available keys on miss)."""
        if key not in self.series:
            raise KeyError(f"no series {key!r}; available: {list(self.series)}")
        return self.series[key]


def _bar(value: float, scale: float, width: int = 24) -> str:
    if scale <= 0:
        return ""
    filled = int(round(max(0.0, value) / scale * width))
    return "#" * min(filled, width)


def render_figure(result: FigureResult, bars: bool = True) -> str:
    """Render a :class:`FigureResult` as an aligned text table.

    Parameters
    ----------
    result : FigureResult
        The experiment output.
    bars : bool
        Append an ASCII bar for the first series (visual analogue of
        the paper's charts).

    Returns
    -------
    str
        The table, notes included, ready to print.
    """
    headers = ["benchmark"] + list(result.series)
    labels = list(result.labels)
    rows: List[List[str]] = []
    for i, label in enumerate(labels):
        row = [label]
        for key in result.series:
            row.append(f"{result.series[key][i]:.1f}")
        rows.append(row)
    if result.average_row and labels:
        avg = result.averages()
        rows.append(["AVERAGE"] + [f"{avg[key]:.1f}" for key in result.series])

    widths = [
        max([len(h)] + [len(r[c]) for r in rows]) for c, h in enumerate(headers)
    ]
    first_series = next(iter(result.series), None)
    scale = 0.0
    if bars and first_series is not None and result.series[first_series]:
        scale = max((abs(v) for v in result.series[first_series]), default=0.0)

    lines = [f"== {result.name}: {result.title} (values in {result.unit}) =="]
    header_line = "  ".join(f"{h:>{w}}" if i else f"{h:<{w}}" for i, (h, w) in enumerate(zip(headers, widths)))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for r, row in enumerate(rows):
        line = "  ".join(
            f"{cell:>{w}}" if i else f"{cell:<{w}}" for i, (cell, w) in enumerate(zip(row, widths))
        )
        if bars and scale > 0 and first_series is not None and r < len(labels):
            line += "  |" + _bar(result.series[first_series][r], scale)
        lines.append(line)
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_comparison(
    labels: Sequence[str],
    paper: Sequence[Optional[float]],
    measured: Sequence[float],
    title: str,
) -> str:
    """Side-by-side paper-vs-measured table used by EXPERIMENTS.md."""
    lines = [title, f"{'point':<24}{'paper':>10}{'measured':>10}"]
    for label, p, m in zip(labels, paper, measured):
        p_txt = f"{p:.1f}" if p is not None else "n/a"
        lines.append(f"{label:<24}{p_txt:>10}{m:>10.1f}")
    return "\n".join(lines)
