"""Setup shim for environments without the ``wheel`` package.

PEP 660 editable installs need ``wheel``; offline environments that lack
it can fall back to the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
