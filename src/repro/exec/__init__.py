"""Parallel experiment execution with a content-addressed run cache.

The paper's evaluation — and every sweep this repository adds on top —
is hundreds of independent ``(kernel, configuration, optimization
level, seed)`` simulations.  ``repro.exec`` turns that from a serial
loop into a scheduled batch:

- :mod:`repro.exec.point` defines :class:`RunPoint` (one simulation)
  and the pure worker function :func:`execute_point`;
- :mod:`repro.exec.cache` keys every point by a SHA-256 over its kernel
  IR, full system configuration, technology parameters, optimization
  level, seed and the simulator's own code fingerprint, and stores
  results as atomic JSON entries (:class:`RunCache`);
- :mod:`repro.exec.engine` fans cache-missing points out over a process
  pool (:class:`ExecutionEngine`, CLI ``--jobs N``) with deterministic,
  input-ordered results, replaying hits instantly and persisting each
  completion so interrupted sweeps resume.

The engine plugs into
:class:`~repro.experiments.runner.ExperimentRunner` (``engine=`` or the
CLI's ``--jobs``/``--cache-dir``/``--no-cache`` flags); cached, parallel
and inline executions of the same point are bit-identical.  See
``docs/EXPERIMENTS_GUIDE.md`` for the cookbook and
``docs/ARCHITECTURE.md`` §2.8 for the cache design.
"""

from .cache import (
    CACHE_FORMAT_VERSION,
    DEFAULT_CACHE_DIR,
    CacheLookup,
    RunCache,
    cache_key_of,
    code_fingerprint,
    ir_fingerprint,
    key_material_of,
)
from .engine import ExecStats, ExecutionEngine, make_engine
from .point import RunPoint, execute_point, execute_point_timed

__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "CacheLookup",
    "ExecStats",
    "ExecutionEngine",
    "RunCache",
    "RunPoint",
    "cache_key_of",
    "code_fingerprint",
    "execute_point",
    "execute_point_timed",
    "ir_fingerprint",
    "key_material_of",
    "make_engine",
]
