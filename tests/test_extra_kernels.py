"""The extra (non-paper) kernels and the IL1-technology override."""

import pytest

from repro.cpu.model import CPUConfig
from repro.cpu.system import System, SystemConfig
from repro.workloads import EXTRA_KERNELS, KERNELS, build_kernel, kernel_names, materialize_trace
from repro.workloads.trace import trace_summary

EXTRAS = list(EXTRA_KERNELS)


class TestRegistry:
    def test_extras_registered(self):
        assert set(EXTRAS) == {
            "jacobi-1d",
            "jacobi-2d",
            "trisolv",
            "cholesky",
            "symm",
            "seidel-2d",
            "conv2d",
            "lu",
            "durbin",
        }

    def test_default_names_exclude_extras(self):
        assert set(kernel_names()) == set(KERNELS)

    def test_include_extras(self):
        names = kernel_names(include_extras=True)
        assert "cholesky" in names
        assert len(names) == len(KERNELS) + len(EXTRA_KERNELS)

    def test_no_name_collisions(self):
        assert not set(KERNELS) & set(EXTRA_KERNELS)


class TestExtrasBuildAndRun:
    @pytest.mark.parametrize("name", EXTRAS)
    def test_builds_and_traces(self, name):
        prog = build_kernel(name)
        summary = trace_summary(materialize_trace(prog))
        assert summary["loads"] > 100
        assert summary["compute_ops"] > 100

    @pytest.mark.parametrize("name", ["jacobi-1d", "trisolv"])
    def test_vwb_beats_dropin(self, name):
        trace = materialize_trace(build_kernel(name))
        dropin = System(SystemConfig(technology="stt-mram")).run(trace)
        vwb = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(trace)
        assert vwb.cycles < dropin.cycles

    def test_cholesky_triangular_structure(self):
        prog = build_kernel("cholesky")
        inner = [lp for lp in prog.loops() if lp.is_innermost]
        assert any(not lp.upper.is_constant for lp in inner)

    def test_jacobi2d_five_point(self):
        prog = build_kernel("jacobi-2d")
        inner = [lp for lp in prog.loops() if lp.is_innermost][0]
        assert len(inner.statements()[0].reads) == 5

    def test_seidel2d_nine_point_in_place(self):
        prog = build_kernel("seidel-2d")
        inner = [lp for lp in prog.loops() if lp.is_innermost][0]
        statement = inner.statements()[0]
        assert len(statement.reads) == 9
        # In place: the written ref is among the read refs' array.
        assert statement.writes[0].array is statement.reads[0].array

    def test_durbin_has_reverse_stream(self):
        from repro.workloads.inspect import analyze

        report = analyze(build_kernel("durbin"))
        strides = {s.stride_bytes for lp in report.loops for s in lp.streams}
        assert any(s < 0 for s in strides)

    def test_lu_doubly_triangular(self):
        prog = build_kernel("lu")
        inner = [lp for lp in prog.loops() if lp.is_innermost]
        assert any(not lp.lower.is_constant for lp in inner)

    def test_symm_mixes_row_and_column_walks(self):
        from repro.workloads.inspect import analyze

        report = analyze(build_kernel("symm"))
        strides = {
            s.stride_bytes
            for lp in report.loops
            for s in lp.streams
            if s.array == "A"
        }
        assert any(abs(s) <= 8 for s in strides)  # row walk
        assert any(abs(s) > 64 for s in strides)  # column walk


class TestIL1Override:
    def test_default_il1_is_sram(self):
        config = SystemConfig()
        assert config.resolved_hierarchy().il1.read_hit_cycles == 1

    def test_nvm_il1_latencies(self):
        config = SystemConfig(il1_technology="stt-mram")
        il1 = config.resolved_hierarchy().il1
        assert il1.read_hit_cycles == 4
        assert il1.write_hit_cycles == 2

    def test_nvm_il1_slows_fetch_bound_run(self, gemm_trace):
        cpu = CPUConfig(model_ifetch=True)
        sram = System(SystemConfig(cpu=cpu)).run(gemm_trace)
        nvm = System(SystemConfig(cpu=cpu, il1_technology="stt-mram")).run(gemm_trace)
        assert nvm.cycles > sram.cycles

    def test_il1_override_without_ifetch_is_neutral(self, gemm_trace):
        sram = System(SystemConfig()).run(gemm_trace)
        nvm = System(SystemConfig(il1_technology="stt-mram")).run(gemm_trace)
        assert nvm.cycles == sram.cycles
