"""PolyBench ``seidel-2d``: in-place Gauss-Seidel nine-point stencil.

Extra kernel: unlike ``jacobi-2d`` the update is *in place* — the stencil
reads values written earlier in the same sweep, so every inner iteration
mixes loads of just-stored lines with loads of not-yet-touched ones.
The VWB's dirty-window write-back path gets exercised continuously.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 40, "tsteps": 4}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the seidel-2d program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n, tsteps = dims["n"], dims["tsteps"]
    t, i, j = Var("t"), Var("i"), Var("j")
    a = Array("A", (n, n))
    body = [
        loop(
            t,
            tsteps,
            [
                loop(
                    i,
                    n - 1,
                    [
                        loop(
                            j,
                            n - 1,
                            [
                                stmt(
                                    reads=[
                                        a[i - 1, j - 1], a[i - 1, j], a[i - 1, j + 1],
                                        a[i, j - 1], a[i, j], a[i, j + 1],
                                        a[i + 1, j - 1], a[i + 1, j], a[i + 1, j + 1],
                                    ],
                                    writes=[a[i, j]],
                                    flops=9,
                                    label="seidel",
                                )
                            ],
                            lower=1,
                        )
                    ],
                    lower=1,
                )
            ],
        )
    ]
    return Program("seidel-2d", body)
