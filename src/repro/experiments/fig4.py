"""Figure 4: read vs write contribution to the NVM+VWB penalty.

Paper: "The read contribution far exceeds that of it's write counterpart
towards the total penalty.  With increasingly complex kernels, the write
penalty contribution also seems to increase, albeit slightly."

Method (differential latency attribution): rerun the NVM+VWB system with
the STT-MRAM *read* latency replaced by the SRAM value — the remaining
penalty is the write contribution; symmetrically for the read
contribution.  The two contributions are normalised to 100% per kernel,
matching the figure's "Relative Penalty Contribution" axis.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..cpu.system import SystemConfig
from ..tech.params import SRAM_32NM_HP, STT_MRAM_32NM
from ..transforms.pipeline import OptLevel
from .report import FigureResult
from .runner import CONFIGURATIONS, ExperimentRunner


def _hybrid_config(read_ns: float, write_ns: float) -> SystemConfig:
    tech = STT_MRAM_32NM.with_latencies(read_ns, write_ns)
    return replace(CONFIGURATIONS["vwb"], technology=tech)


def run(runner: Optional[ExperimentRunner] = None, level: OptLevel = OptLevel.NONE) -> FigureResult:
    """Relative read/write penalty contributions per kernel."""
    runner = runner or ExperimentRunner()
    sram_read = SRAM_32NM_HP.read_latency_ns
    sram_write = SRAM_32NM_HP.write_latency_ns
    nvm_read = STT_MRAM_32NM.read_latency_ns
    nvm_write = STT_MRAM_32NM.write_latency_ns

    read_only = _hybrid_config(nvm_read, sram_write)  # only reads are slow
    write_only = _hybrid_config(sram_read, nvm_write)  # only writes are slow

    read_shares = []
    write_shares = []
    for kernel in runner.kernels:
        baseline = runner.run("sram", kernel, level)
        read_pen = max(0.0, runner.run(read_only, kernel, level, cache_key="vwb-rdonly").penalty_vs(baseline))
        write_pen = max(0.0, runner.run(write_only, kernel, level, cache_key="vwb-wronly").penalty_vs(baseline))
        total = read_pen + write_pen
        if total <= 0:
            read_shares.append(0.0)
            write_shares.append(0.0)
            continue
        read_shares.append(read_pen / total * 100.0)
        write_shares.append(write_pen / total * 100.0)

    avg_read = sum(read_shares) / len(read_shares)
    return FigureResult(
        name="fig4",
        title="Read vs write contribution to the NVM+VWB penalty",
        labels=list(runner.kernels),
        series={"read_share": read_shares, "write_share": write_shares},
        notes=[
            "paper: read contribution far exceeds write; write share grows "
            "slightly with kernel complexity",
            f"measured: average read share {avg_read:.1f}%",
        ],
    )
