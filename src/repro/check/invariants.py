"""Representation invariants of the simulator's architectural structures.

Every check here states a property that must hold *between any two trace
events* on a correct simulator, independent of workload or
configuration.  The checks read the same private state the shadow
capture reads (see :mod:`repro.check.shadow`) and raise
:class:`~repro.errors.InvariantViolation` — carrying the offending event
index — the moment a property fails, so a corruption is caught at the
event that introduced it instead of surfacing thousands of events later
as a wrong cycle count.

The invariant catalogue (also documented in ``docs/ARCHITECTURE.md``
section 2.10):

- **Cache sets**: at most one way per set holds a given tag; a dirty
  way is valid; the LRU order is a permutation of the ways; FIFO/PLRU
  policy state stays in range.
- **Write buffers**: completion times are non-decreasing (FIFO drain)
  and occupancy never exceeds capacity.
- **MSHRs**: occupancy never exceeds capacity and every entry is keyed
  by its own line address.
- **Retirement**: a retired slot holds no line and is clean; every set
  keeps at least one usable way.
- **VWB / L0 store**: resident windows are aligned and unique; an
  invalid line is clean with a zeroed recency stamp; valid recency
  stamps are unique, positive and never ahead of the buffer clock.
- **VWB fill buffers**: staged promotions fit in the fill-buffer file
  and are disjoint from the resident VWB windows.
- **L0 fills**: every in-flight fill belongs to a resident line.
- **EMSHR**: the lingering-entry file never exceeds its capacity.
- **Store buffer**: completion times are non-decreasing and occupancy
  never exceeds the configured entries.
"""

from __future__ import annotations

from typing import Optional

from ..core.emshr import EMSHRFrontend
from ..core.hybrid import HybridFrontend
from ..core.l0 import L0Frontend
from ..core.vwb import VeryWideBuffer
from ..core.vwb_frontend import VWBFrontend
from ..errors import InvariantViolation
from ..mem.cache import Cache
from ..mem.replacement import _FIFOSet, _LRUSet, _TreePLRUSet


def _fail(message: str, event_index: int) -> None:
    where = f" (after event {event_index})" if event_index >= 0 else ""
    raise InvariantViolation(message + where, event_index=event_index)


def check_cache(cache: Cache, event_index: int = -1) -> None:
    """Check every representation invariant of one cache level."""
    cfg = cache.config
    name = cfg.name
    assoc = cfg.associativity
    retirement = cache._retirement
    for index in range(cfg.sets):
        tags = cache._tags[index]
        dirty = cache._dirty[index]
        valid = [t for t in tags if t is not None]
        if len(set(valid)) != len(valid):
            _fail(f"{name}: set {index} holds a duplicate tag: {tags}", event_index)
        for way in range(assoc):
            if dirty[way] and tags[way] is None:
                _fail(f"{name}: set {index} way {way} is dirty but invalid", event_index)
        repl = cache._repl[index]
        if isinstance(repl, _LRUSet):
            if sorted(repl._order) != list(range(assoc)):
                _fail(
                    f"{name}: set {index} LRU order {repl._order} is not a "
                    f"permutation of {assoc} ways",
                    event_index,
                )
        elif isinstance(repl, _FIFOSet):
            if not 0 <= repl._next < assoc:
                _fail(
                    f"{name}: set {index} FIFO pointer {repl._next} out of range",
                    event_index,
                )
        elif isinstance(repl, _TreePLRUSet):
            if any(bit not in (0, 1) for bit in repl._bits):
                _fail(f"{name}: set {index} PLRU bits corrupt: {repl._bits}", event_index)
        if retirement is not None:
            if retirement.enabled_ways(index) < 1:
                _fail(f"{name}: set {index} has no usable way left", event_index)
            for way in range(assoc):
                if retirement.is_disabled(index, way) and tags[way] is not None:
                    _fail(
                        f"{name}: retired slot ({index}, {way}) still holds a line",
                        event_index,
                    )
    completions = cache._write_buffer._completions
    if len(completions) > cache._write_buffer.capacity:
        _fail(
            f"{name}: write buffer holds {len(completions)} entries, "
            f"capacity {cache._write_buffer.capacity}",
            event_index,
        )
    previous = None
    for completion in completions:
        if previous is not None and completion < previous:
            _fail(
                f"{name}: write-buffer completions not FIFO-ordered: "
                f"{list(completions)}",
                event_index,
            )
        previous = completion
    mshrs = cache._mshrs
    if mshrs.occupancy() > mshrs.capacity:
        _fail(
            f"{name}: MSHR file holds {mshrs.occupancy()} entries, "
            f"capacity {mshrs.capacity}",
            event_index,
        )
    for line, entry in mshrs._entries.items():
        if entry.line_addr != line:
            _fail(
                f"{name}: MSHR entry keyed {line:#x} tracks {entry.line_addr:#x}",
                event_index,
            )
    if len(cache._banks._busy_until) != cfg.banks:
        _fail(f"{name}: bank timer lost a bank", event_index)


def check_wide_buffer(
    buffer: VeryWideBuffer, owner: str, event_index: int = -1
) -> None:
    """Check the VWB/L0 wide-line invariants (validity, LRU stamps)."""
    window_bytes = buffer._window_bytes
    seen_windows = set()
    seen_stamps = set()
    for i, line in enumerate(buffer._lines):
        if line.window_addr is None:
            if line.dirty:
                _fail(f"{owner}: invalid line {i} is dirty", event_index)
            if line.last_touch != 0:
                _fail(
                    f"{owner}: invalid line {i} carries a stale recency stamp "
                    f"{line.last_touch}",
                    event_index,
                )
            continue
        if line.window_addr % window_bytes != 0:
            _fail(
                f"{owner}: line {i} window {line.window_addr:#x} is not "
                f"{window_bytes}-byte aligned",
                event_index,
            )
        if line.window_addr in seen_windows:
            _fail(
                f"{owner}: window {line.window_addr:#x} resident twice", event_index
            )
        seen_windows.add(line.window_addr)
        if line.last_touch < 1:
            _fail(f"{owner}: valid line {i} has no recency stamp", event_index)
        if line.last_touch > buffer._clock:
            _fail(
                f"{owner}: line {i} stamp {line.last_touch} is ahead of the "
                f"buffer clock {buffer._clock}",
                event_index,
            )
        if line.last_touch in seen_stamps:
            _fail(
                f"{owner}: recency stamp {line.last_touch} used twice", event_index
            )
        seen_stamps.add(line.last_touch)


def check_frontend(frontend, event_index: int = -1) -> None:
    """Check the front-end-specific buffer invariants."""
    if isinstance(frontend, VWBFrontend):
        check_wide_buffer(frontend.vwb, "vwb", event_index)
        pending = frontend._pending
        if len(pending) > frontend._fill_buffers:
            _fail(
                f"vwb: {len(pending)} staged promotions exceed the "
                f"{frontend._fill_buffers} fill buffers",
                event_index,
            )
        window_bytes = frontend.vwb._window_bytes
        resident = set(frontend.vwb.resident_windows)
        for window in pending:
            if window % window_bytes != 0:
                _fail(f"vwb: staged window {window:#x} misaligned", event_index)
            if window in resident:
                _fail(
                    f"vwb: window {window:#x} both resident and staged", event_index
                )
    elif isinstance(frontend, L0Frontend):
        check_wide_buffer(frontend._store, "l0", event_index)
        resident = set(frontend._store.resident_windows)
        for line, ready in frontend._fill_ready.items():
            if line not in resident:
                _fail(
                    f"l0: in-flight fill for non-resident line {line:#x}", event_index
                )
            if ready < 0.0:
                _fail(f"l0: fill of {line:#x} ready at negative cycle", event_index)
    elif isinstance(frontend, EMSHRFrontend):
        if len(frontend._entries) > frontend._capacity:
            _fail(
                f"emshr: {len(frontend._entries)} lingering entries exceed "
                f"capacity {frontend._capacity}",
                event_index,
            )
    elif isinstance(frontend, HybridFrontend):
        check_cache(frontend.sram, event_index)


def check_store_queue(cpu, event_index: int = -1) -> None:
    """Check the CPU store buffer: FIFO completion order, bounded size."""
    queue = cpu.store_queue
    if queue is None:
        return
    entries = cpu.config.store_buffer_entries
    if len(queue) > entries:
        _fail(
            f"cpu: store buffer holds {len(queue)} stores, capacity {entries}",
            event_index,
        )
    previous: Optional[float] = None
    for completion in queue:
        if previous is not None and completion < previous:
            _fail(
                f"cpu: store-buffer completions not FIFO-ordered: {list(queue)}",
                event_index,
            )
        previous = completion


def check_system(system, event_index: int = -1) -> None:
    """Run the complete invariant catalogue against a live system.

    Raises:
        InvariantViolation: Naming the violated property, the structure,
            and (when ``event_index >= 0``) the trace event after which
            the corruption was observed.
    """
    check_cache(system.dl1, event_index)
    check_cache(system.hierarchy.l2, event_index)
    check_cache(system.hierarchy.il1, event_index)
    check_frontend(system.frontend, event_index)
    check_store_queue(system.cpu, event_index)
