"""PolyBench ``trisolv``: forward substitution, L x = b.

Extra kernel: a triangular reduction whose inner trip count grows with
the outer iteration and whose per-row work is data-dependent — the
hardest case for fixed-distance software prefetching.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 120}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the trisolv program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n = dims["n"]
    i, j = Var("i"), Var("j")
    l = Array("L", (n, n))
    x = Array("x", (n,))
    b = Array("b", (n,))
    body = [
        loop(
            i,
            n,
            [
                stmt(reads=[b[i]], writes=[x[i]], flops=0, label="seed"),
                loop(
                    j,
                    i,
                    [
                        stmt(
                            reads=[x[i], l[i, j], x[j]],
                            writes=[x[i]],
                            flops=2,
                            label="reduce",
                        )
                    ],
                ),
                stmt(reads=[x[i], l[i, i]], writes=[x[i]], flops=1, label="divide"),
            ],
        )
    ]
    return Program("trisolv", body)
