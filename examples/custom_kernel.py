#!/usr/bin/env python3
"""Bring your own kernel: a 1-D Jacobi stencil through the full pipeline.

The paper evaluates PolyBench kernels, but the workload layer is a
general affine-IR: this example writes a three-point stencil from
scratch, lets the transformation passes vectorize and prefetch it, and
compares the SRAM baseline against the STT-MRAM + VWB proposal — the
workflow a user follows to evaluate the NVM DL1 on their own loops.

Run with::

    python examples/custom_kernel.py
"""

from repro import OptLevel, System, SystemConfig, optimize
from repro.cpu.system import warm_regions_of
from repro.workloads import Var, materialize_trace
from repro.workloads.ir import Array, Program, loop, stmt
from repro.workloads.trace import trace_summary


def build_jacobi_1d(n: int = 4096, steps: int = 8) -> Program:
    """``B[i] = (A[i-1] + A[i] + A[i+1]) / 3`` alternating with the
    copy-back, for a few time steps."""
    t, i = Var("t"), Var("i")
    a = Array("A", (n,))
    b = Array("B", (n,))
    body = loop(
        t,
        steps,
        [
            loop(
                i,
                n - 1,
                [
                    stmt(
                        reads=[a[i - 1], a[i], a[i + 1]],
                        writes=[b[i]],
                        flops=3,
                        label="stencil",
                    )
                ],
                lower=1,
            ),
            loop(
                i,
                n - 1,
                [stmt(reads=[b[i]], writes=[a[i]], flops=0, label="copy_back")],
                lower=1,
            ),
        ],
    )
    return Program("jacobi-1d", [body])


def main() -> None:
    program = build_jacobi_1d()
    optimized = optimize(program, OptLevel.FULL)

    for label, prog in (("unoptimized", program), ("optimized", optimized)):
        trace = materialize_trace(prog)
        summary = trace_summary(trace)
        warm = warm_regions_of(prog)

        baseline = System(SystemConfig(technology="sram")).run(trace, warm_regions=warm)
        dropin = System(SystemConfig(technology="stt-mram")).run(trace, warm_regions=warm)
        vwb = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(
            trace, warm_regions=warm
        )

        print(f"\n=== jacobi-1d, {label} code ===")
        print(
            f"trace: {summary['loads']} loads, {summary['stores']} stores, "
            f"{summary['prefetches']} prefetches, {summary['branches']} branches"
        )
        print(f"  SRAM baseline    : {baseline.cycles:10.0f} cycles")
        print(
            f"  drop-in STT-MRAM : {dropin.cycles:10.0f} cycles "
            f"({dropin.penalty_vs(baseline):+.1f}%)"
        )
        print(
            f"  STT-MRAM + VWB   : {vwb.cycles:10.0f} cycles "
            f"({vwb.penalty_vs(baseline):+.1f}%)"
        )


if __name__ == "__main__":
    main()
