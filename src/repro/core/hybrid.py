"""Hybrid SRAM/NVM D-cache front-end (related-work extension).

Section II of the paper surveys hybrid organisations: "almost all the
proposals to incorporate NVMs into the traditional memory hierarchy
consists of them being utilized along with SRAM ... so that the negative
impacts can be limited and the positive ones maximized" (e.g. Sun et
al.'s MRAM L1 with SRAM buffers, reference [2]).

This front-end implements the canonical shape of those proposals: a
small SRAM partition in front of the full-size NVM array.

- Loads check the SRAM partition first (1-cycle hit); a miss reads the
  NVM array and *allocates the line into the SRAM partition* (unlike the
  VWB's wide windows, allocation is per ordinary line through the narrow
  interface).
- Stores allocate into the SRAM partition too (the classic
  write-mitigation move: writes coalesce in SRAM and only reach the NVM
  array on eviction).
- Dirty SRAM victims are written back into the NVM array.

Compared to the VWB the hybrid spends far more area (kilobytes of SRAM
vs 2 Kbit of register file) to buy a similar read-latency shield — the
trade-off the paper's area argument is about.  The
``ablation-hybrid`` bench quantifies it.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..mem.cache import Cache, CacheConfig
from ..mem.request import Access, AccessType
from .frontend import DCacheFrontend


class _NVMBackAdapter:
    """Routes the SRAM partition's misses/write-backs into the NVM array.

    The partition sees the NVM DL1 as its next level; the NVM's own
    misses continue to the real next level (L2) as usual.
    """

    def __init__(self, nvm: Cache) -> None:
        self._nvm = nvm

    def access(self, addr: int, is_write: bool, now: float) -> float:
        return self._nvm.line_access(addr, is_write, now)


class HybridFrontend(DCacheFrontend):
    """Small SRAM partition in front of the full STT-MRAM DL1.

    Args:
        backing: The NVM DL1 array.
        sram_bytes: Capacity of the SRAM partition (8 KB default, the
            scale used by the hybrid-L1 proposals the paper cites).
        sram_associativity: Ways of the partition.
        hit_cycles: SRAM partition access time.
    """

    name = "hybrid"

    def __init__(
        self,
        backing: Cache,
        sram_bytes: int = 8192,
        sram_associativity: int = 2,
        hit_cycles: int = 1,
    ) -> None:
        super().__init__(backing)
        if sram_bytes <= 0:
            raise ConfigurationError(f"SRAM partition must be non-empty: {sram_bytes}")
        self.sram = Cache(
            CacheConfig(
                name="dl1-sram-partition",
                capacity_bytes=sram_bytes,
                associativity=sram_associativity,
                line_bytes=backing.config.line_bytes,
                read_hit_cycles=hit_cycles,
                write_hit_cycles=hit_cycles,
                mshr_entries=backing.config.mshr_entries,
                write_buffer_entries=backing.config.write_buffer_entries,
                write_buffer_drain_cycles=float(backing.config.write_hit_cycles),
            ),
            _NVMBackAdapter(backing),
        )

    def set_probe(self, probe) -> None:
        """Attach the probe to the SRAM partition as well; its accesses
        report under the ``"dl1-sram-partition"`` component."""
        super().set_probe(probe)
        self.sram.set_probe(probe)

    def read(self, addr: int, size: int, now: float) -> float:
        """Load: SRAM partition first; misses fill from the NVM array."""
        if self.sram.contains(addr):
            self.stats.buffer_read_hits += 1
        else:
            self.stats.buffer_read_misses += 1
            self.stats.promotions += 1
        return self.sram.access(Access(addr, size, AccessType.READ), now)

    def write(self, addr: int, size: int, now: float) -> float:
        """Store: write-allocate into the SRAM partition."""
        if self.sram.contains(addr):
            self.stats.buffer_write_hits += 1
        else:
            self.stats.buffer_write_misses += 1
        return self.sram.access(Access(addr, size, AccessType.WRITE), now)

    def prefetch(self, addr: int, now: float) -> float:
        """Software prefetch into the SRAM partition."""
        self.stats.prefetches_issued += 1
        if self.sram.contains(addr):
            self.stats.prefetches_useless += 1
            return 0.0
        return self.sram.prefetch(addr, now)

    def reset(self) -> None:
        """Reset the partition, stats and the NVM array."""
        super().reset()
        self.sram.reset()

    def clear_stats(self) -> None:
        """Keep contents, clear stats/timing in both partitions."""
        super().clear_stats()
        self.sram.clear_stats()
