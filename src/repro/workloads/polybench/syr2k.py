"""PolyBench ``syr2k`` (rectangular form): C = alpha*(A*B^T + B*A^T) + beta*C.

Like :mod:`repro.workloads.polybench.syrk` but with four unit-stride
streams in the reduction loop — the widest vector-friendly statement in
the suite.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 18, "m": 20}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the syr2k program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n, m = dims["n"], dims["m"]
    i, j, k = Var("i"), Var("j"), Var("k")
    a = Array("A", (n, m))
    b = Array("B", (n, m))
    c = Array("C", (n, n))
    body = [
        loop(
            i,
            n,
            [loop(j, n, [stmt(reads=[c[i, j]], writes=[c[i, j]], flops=1, label="beta_scale")])],
        ),
        loop(
            i,
            n,
            [
                loop(
                    j,
                    n,
                    [
                        loop(
                            k,
                            m,
                            [
                                stmt(
                                    reads=[c[i, j], a[i, k], b[j, k], b[i, k], a[j, k]],
                                    writes=[c[i, j]],
                                    flops=5,
                                    label="mac2",
                                )
                            ],
                        )
                    ],
                    permutable=True,
                )
            ],
        ),
    ]
    return Program("syr2k", body)
