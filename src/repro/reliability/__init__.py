"""Reliability modelling: stochastic faults, ECC, retry and degradation.

Real STT-MRAM is not only slow-to-write but *stochastic*: a write pulse
fails to switch the cell with a thermally-activated probability, reads
can disturb the stored value, and weakly-written cells decay before
their nominal retention time.  Every practical STT-MRAM cache proposal
therefore pairs the array with write-verify-retry, ECC, or retention
management (Khoshavi et al.'s read-tuned hierarchies, Jadidi et al.'s
retention-relaxed caches).  This package supplies those mechanisms for
the reproduced platform, with *timing consequences* rather than mere
counters:

- :mod:`repro.reliability.rng` — the single seeded-generator helper
  every stochastic path in the repository draws from, so two runs with
  the same seed are bit-identical;
- :mod:`repro.reliability.faults` — :class:`ReliabilityConfig` and the
  deterministic :class:`FaultInjector` sampling per-bit write failures
  (thermal-stability model), read-disturb and retention-decay faults;
- :mod:`repro.reliability.ecc` — a SECDED code model: fixed decode
  latency on reads, single-bit correction, detected-uncorrectable
  outcomes that trigger re-reads and line refills;
- :mod:`repro.reliability.degrade` — the line disable-and-remap map
  that retires cache line slots whose write-retry count crosses a
  threshold (graceful degradation: effective associativity shrinks).

The mechanisms are wired into :class:`repro.mem.cache.Cache`; enable
them by passing a :class:`ReliabilityConfig` with nonzero fault rates
through :attr:`repro.cpu.system.SystemConfig.reliability`.  With every
rate at zero (the default everywhere) the fault path is never entered
and timing is bit-exact with the fault-free simulator.
"""

from .degrade import LineRetirementMap
from .ecc import EccOutcome, SECDEDCode, secded_check_bits
from .faults import FaultInjector, ReliabilityConfig, ReliabilityStats
from .rng import derive_seed, make_rng

__all__ = [
    "EccOutcome",
    "FaultInjector",
    "LineRetirementMap",
    "ReliabilityConfig",
    "ReliabilityStats",
    "SECDEDCode",
    "derive_seed",
    "make_rng",
    "secded_check_bits",
]
