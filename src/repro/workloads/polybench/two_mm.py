"""PolyBench ``2mm``: D = alpha*A*B*C + beta*D via tmp = alpha*A*B.

Kept in PolyBench's natural ``k``-innermost form, so ``B[k][j]`` and
``C[k][j]`` walk columns at stride NJ/NL: each inner iteration touches a
new cache line, making this (with ``3mm``) the most promotion-hungry
kernel — the one where drop-in NVM hurts most and prefetching pays most.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"ni": 18, "nj": 18, "nk": 18, "nl": 18}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the 2mm program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    ni, nj, nk, nl = dims["ni"], dims["nj"], dims["nk"], dims["nl"]
    i, j, k = Var("i"), Var("j"), Var("k")
    a = Array("A", (ni, nk))
    b = Array("B", (nk, nj))
    c = Array("C", (nj, nl))
    d = Array("D", (ni, nl))
    tmp = Array("tmp", (ni, nj))
    body = [
        loop(
            i,
            ni,
            [
                loop(
                    j,
                    nj,
                    [
                        stmt(writes=[tmp[i, j]], flops=0, label="init_tmp"),
                        loop(
                            k,
                            nk,
                            [
                                stmt(
                                    reads=[tmp[i, j], a[i, k], b[k, j]],
                                    writes=[tmp[i, j]],
                                    flops=2,
                                    label="ab_mac",
                                )
                            ],
                        ),
                    ],
                )
            ],
        ),
        loop(
            i,
            ni,
            [
                loop(
                    j,
                    nl,
                    [
                        stmt(reads=[d[i, j]], writes=[d[i, j]], flops=1, label="beta_scale"),
                        loop(
                            k,
                            nj,
                            [
                                stmt(
                                    reads=[d[i, j], tmp[i, k], c[k, j]],
                                    writes=[d[i, j]],
                                    flops=2,
                                    label="tc_mac",
                                )
                            ],
                        ),
                    ],
                )
            ],
        ),
    ]
    return Program("2mm", body)
