"""Hand-computed event-count formulas for each PolyBench kernel.

These pin the workload substrate: if a kernel's loop structure, scalar
replacement or statement mix drifts, the formula breaks before any
figure silently changes.
"""

import pytest

from repro.workloads import build_kernel, materialize_trace
from repro.workloads.polybench import (
    atax,
    bicg,
    doitgen,
    gesummv,
    mvt,
    syr2k,
    syrk,
    trmm,
)
from repro.workloads.trace import trace_summary


def counts(name):
    return trace_summary(materialize_trace(build_kernel(name)))


class TestLoadFormulas:
    def test_atax(self):
        m, n = atax.BASE_DIMS["m"], atax.BASE_DIMS["n"]
        s = counts("atax")
        # Per row: hoisted tmp (1) + n*(A,x) in the dot + hoisted tmp (1)
        # + n*(y,A) in the axpy.
        expected = m * (1 + 2 * n + 1 + 2 * n)
        assert s["loads"] == expected

    def test_atax_stores(self):
        m, n = atax.BASE_DIMS["m"], atax.BASE_DIMS["n"]
        s = counts("atax")
        # init y (n) + per row: init_tmp (1) + hoisted tmp store after
        # the dot loop (1) + y stores (n).
        assert s["stores"] == n + m * (2 + n)

    def test_bicg(self):
        n, m = bicg.BASE_DIMS["n"], bicg.BASE_DIMS["m"]
        s = counts("bicg")
        # Per i: hoisted r,q loads (2) + m*(s,A) + m*(A,p).
        expected = n * (2 + 4 * m)
        assert s["loads"] == expected

    def test_mvt(self):
        n = mvt.BASE_DIMS["n"]
        s = counts("mvt")
        # Both phases: hoisted x (1) + n*(A,y) per row.
        assert s["loads"] == 2 * n * (1 + 2 * n)
        assert s["stores"] == 2 * n

    def test_gesummv(self):
        n = gesummv.BASE_DIMS["n"]
        s = counts("gesummv")
        # Per i: hoisted tmp,y (2) + n*(A,x) + n*(B,x) + combine (2).
        assert s["loads"] == n * (2 + 4 * n + 2)

    def test_syrk(self):
        n, m = syrk.BASE_DIMS["n"], syrk.BASE_DIMS["m"]
        s = counts("syrk")
        # Scale: n*n C loads; MAC: per (i,j): hoisted C + m*(A,A).
        assert s["loads"] == n * n + n * n * (1 + 2 * m)

    def test_syr2k(self):
        n, m = syr2k.BASE_DIMS["n"], syr2k.BASE_DIMS["m"]
        s = counts("syr2k")
        assert s["loads"] == n * n + n * n * (1 + 4 * m)

    def test_trmm(self):
        m, n = trmm.BASE_DIMS["m"], trmm.BASE_DIMS["n"]
        s = counts("trmm")
        # Per (i,j): scale load (1) + hoisted B[i][j] load (only when the
        # k-loop is non-empty, i.e. i < m-1) + (m-i-1)*(A,B).
        inner = sum(m - i - 1 for i in range(m))
        assert s["loads"] == m * n + n * (m - 1) + n * inner * 2

    def test_doitgen(self):
        nr, nq, np_ = (
            doitgen.BASE_DIMS["nr"],
            doitgen.BASE_DIMS["nq"],
            doitgen.BASE_DIMS["np"],
        )
        s = counts("doitgen")
        # MAC: per (r,q,p): hoisted sum + np*(A,C4); copy-back: np loads.
        expected = nr * nq * (np_ * (1 + 2 * np_) + np_)
        assert s["loads"] == expected


class TestBranchFormulas:
    def test_gemm_branches(self):
        from repro.workloads.polybench import gemm

        ni = gemm.BASE_DIMS["ni"]
        s = counts("gemm")
        # scale j-loops + mac j-loops + k-loops + i-loop.
        assert s["branches"] == ni * ni + ni * ni * ni + ni * ni + ni

    def test_mvt_branches(self):
        n = mvt.BASE_DIMS["n"]
        s = counts("mvt")
        assert s["branches"] == 2 * (n * n + n)


class TestComputeFormulas:
    def test_gemm_flops(self):
        from repro.workloads.polybench import gemm

        ni = gemm.BASE_DIMS["ni"]
        s = counts("gemm")
        # scale: (1 flop + 1 overhead) * n^2; mac: (2 + 1) * n^3.
        assert s["compute_ops"] == 2 * ni * ni + 3 * ni**3

    def test_syrk_flops(self):
        n, m = syrk.BASE_DIMS["n"], syrk.BASE_DIMS["m"]
        s = counts("syrk")
        assert s["compute_ops"] == 2 * n * n + 4 * n * n * m


class TestSystemDescribe:
    def test_describe_mentions_key_parameters(self):
        from repro.cpu.system import System, SystemConfig

        system = System(SystemConfig(technology="stt-mram", frontend="vwb"))
        text = system.describe()
        assert "64KB" in text
        assert "STT-MRAM" in text
        assert "VWB: 2048 bits" in text
        assert "2MB" in text

    def test_describe_plain(self):
        from repro.cpu.system import System, SystemConfig

        text = System(SystemConfig()).describe()
        assert "front-end 'plain'" in text
        assert "VWB" not in text


class TestCLIErrors:
    def test_unknown_kernel_graceful(self, capsys):
        from repro.cli import main

        # Unknown kernel -> WorkloadError -> runtime exit code.
        assert main(["fig1", "--kernels", "linpack"]) == 3
        assert "error:" in capsys.readouterr().err
