"""The headline-claim validation harness (on a fast kernel subset)."""

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments.validate import render_claims, run, validate


@pytest.fixture(scope="module")
def claims():
    return validate(ExperimentRunner(kernels=["gemm", "atax", "mvt", "2mm"]))


class TestValidate:
    def test_all_claims_have_details(self, claims):
        assert len(claims) >= 9
        assert all(c.detail for c in claims)
        assert all(c.statement for c in claims)

    def test_core_claims_pass_on_subset(self, claims):
        by_name = {c.name: c for c in claims}
        for name in (
            "fig1-dropin-average",
            "fig3-vwb-reduction",
            "fig5-final-penalty",
            "fig9-gains",
            "fig4-read-dominates",
        ):
            assert by_name[name].passed, by_name[name].detail

    def test_render(self, claims):
        text = render_claims(claims)
        assert "PASS" in text
        assert "claims reproduced" in text

    def test_figure_adapter(self):
        result = run(ExperimentRunner(kernels=["gemm", "atax", "mvt", "2mm"]))
        assert result.name == "validate"
        assert set(result.series["passed"]) <= {0.0, 1.0}


class TestLatencySensitivityAblation:
    def test_write_scaling_flat_read_scaling_steep(self):
        from repro.experiments.ablations import run_latency_sensitivity

        runner = ExperimentRunner(kernels=["gemm", "atax"])
        result = run_latency_sensitivity(runner, factors=(1.0, 0.25))
        avg = result.averages()
        # Halving/quartering the write latency barely moves the penalty...
        assert abs(avg["write_x1"] - avg["write_x0.25"]) < 3.0
        # ...while quartering the read latency removes almost all of it.
        assert avg["read_x0.25"] < 0.2 * avg["read_x1"]
