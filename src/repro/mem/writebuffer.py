"""The small write buffer between a cache and its next level.

The paper's store policy: "A small write buffer is present ... to hold the
evicted data temporarily, while being transferred to the L2 ... No write
through is present ... and a write-back policy is implemented."

The buffer accepts an entry immediately when a slot is free; entries drain
to the next level one at a time at a fixed per-entry latency.  When full,
the producer stalls until the oldest entry finishes draining.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from ..errors import ConfigurationError
from ..obs.probe import NULL_PROBE, Probe


class WriteBuffer:
    """Fixed-capacity FIFO of in-flight write-backs.

    Args:
        entries: Number of buffer slots (must be positive).
        drain_cycles: Cycles to retire one entry into the next level.

    The implementation stores only completion times: slot ``i`` of the
    deque holds the absolute cycle at which that write-back finishes.
    ``now`` must be non-decreasing across calls (in-order core).
    """

    def __init__(self, entries: int, drain_cycles: float) -> None:
        if entries <= 0:
            raise ConfigurationError(f"write buffer needs at least one entry: {entries}")
        if drain_cycles < 0:
            raise ConfigurationError(f"drain latency must be non-negative: {drain_cycles}")
        self._entries = entries
        self._drain_cycles = drain_cycles
        self._completions: Deque[float] = deque()
        self.total_pushes = 0
        self.total_stall_cycles = 0.0
        self._probe: Probe = NULL_PROBE
        self._probing = False
        self._owner = ""

    def set_probe(self, probe: Probe, owner: str) -> None:
        """Attach ``probe``; stalls are reported under ``owner``."""
        self._probe = probe
        self._probing = probe.enabled
        self._owner = owner

    @property
    def capacity(self) -> int:
        """Number of slots."""
        return self._entries

    def occupancy(self, now: float) -> int:
        """Entries still draining at cycle ``now``."""
        self._retire(now)
        return len(self._completions)

    def push(self, now: float) -> float:
        """Insert one write-back at cycle ``now``.

        Returns:
            Stall cycles suffered by the producer (0 when a slot is free).
        """
        self._retire(now)
        at = now
        stall = 0.0
        if len(self._completions) >= self._entries:
            # Wait for the oldest entry to drain, freeing one slot.
            stall = self._completions[0] - now
            now = self._completions.popleft()
        # Drains are serialised through the single port to the next level.
        start = max(now, self._completions[-1] if self._completions else now)
        self._completions.append(start + self._drain_cycles)
        self.total_pushes += 1
        self.total_stall_cycles += stall
        if self._probing and stall > 0.0:
            self._probe.wb_stall(self._owner, stall, at)
        return stall

    def drain_time(self, now: float) -> float:
        """Cycles until the buffer is completely empty."""
        self._retire(now)
        if not self._completions:
            return 0.0
        return self._completions[-1] - now

    def reset(self) -> None:
        """Discard all in-flight entries and statistics."""
        self._completions.clear()
        self.total_pushes = 0
        self.total_stall_cycles = 0.0

    def _retire(self, now: float) -> None:
        while self._completions and self._completions[0] <= now:
            self._completions.popleft()
