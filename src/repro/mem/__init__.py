"""Memory-hierarchy substrate: caches, buffers, banks and main memory.

This package implements the hardware the paper's platform is built from —
everything *except* the paper's contribution (the Very Wide Buffer and the
comparison front-ends live in :mod:`repro.core`):

- :mod:`repro.mem.request` — access descriptors;
- :mod:`repro.mem.stats` — hit/miss/traffic counters;
- :mod:`repro.mem.replacement` — LRU/FIFO/PLRU/random policies;
- :mod:`repro.mem.banks` — banked-array busy/conflict timing;
- :mod:`repro.mem.writebuffer` — the small eviction/store write buffer;
- :mod:`repro.mem.mainmem` — the fixed-latency DRAM model;
- :mod:`repro.mem.mshr` — miss-status holding registers;
- :mod:`repro.mem.cache` — the set-associative write-back cache;
- :mod:`repro.mem.hierarchy` — wiring of IL1/DL1/L2/DRAM.

Timing convention used throughout: every access takes the absolute cycle
``now`` at which it starts and returns the number of cycles until its data
is available (reads) or it is accepted (writes).  Models that own busy
resources (banks, write buffers, MSHRs) remember absolute ``busy-until``
times, which is sufficient because the modelled core is in-order and calls
with monotonically non-decreasing ``now``.
"""

from .request import Access, AccessType
from .stats import CacheStats
from .replacement import (
    ReplacementPolicy,
    LRUPolicy,
    FIFOPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)
from .banks import BankTimer
from .writebuffer import WriteBuffer
from .mainmem import MainMemory
from .mshr import MSHRFile
from .prefetcher import StridePrefetcher
from .cache import Cache, CacheConfig
from .hierarchy import (
    MemoryHierarchy,
    HierarchyConfig,
    LineAccessAdapter,
    default_il1_config,
    default_l2_config,
)

__all__ = [
    "Access",
    "AccessType",
    "CacheStats",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "TreePLRUPolicy",
    "make_policy",
    "BankTimer",
    "WriteBuffer",
    "MainMemory",
    "MSHRFile",
    "StridePrefetcher",
    "Cache",
    "CacheConfig",
    "MemoryHierarchy",
    "HierarchyConfig",
    "LineAccessAdapter",
    "default_il1_config",
    "default_l2_config",
]
