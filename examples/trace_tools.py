#!/usr/bin/env python3
"""Trace toolbox: persist traces and predict miss rates without simulating.

Demonstrates two substrate tools:

1. trace serialisation (``repro.workloads.tracefile``) — save a kernel's
   event stream to a text file and replay it bit-identically;
2. reuse-distance profiling (``repro.workloads.reuse``) — one Mattson
   pass predicts the miss rate of *every* fully-associative LRU cache
   capacity, which this script prints as a miss curve and then verifies
   against the real simulator at the DL1's 1024-line capacity.

Run with::

    python examples/trace_tools.py [kernel]
"""

import sys
import tempfile

from repro import System, SystemConfig, build_kernel, materialize_trace
from repro.workloads import load_trace, save_trace
from repro.workloads.encode import encode_events
from repro.workloads.reuse import profile_trace

#: Line size of the cache the prediction is checked against below; the
#: profile *must* be taken at the same granularity (a 64 B histogram
#: predicts nothing about a 32 B cache), so the constant is shared.
LINE_BYTES = 64


def main(kernel: str = "atax") -> None:
    program = build_kernel(kernel)
    trace = materialize_trace(program)

    # --- 1. serialise and replay -------------------------------------
    with tempfile.NamedTemporaryFile("w", suffix=".trace", delete=False) as f:
        path = f.name
    count = save_trace(trace, path)
    replayed = load_trace(path)
    original = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(trace)
    replay = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(replayed)
    print(f"saved {count} events to {path}")
    print(
        f"replayed run matches original: "
        f"{original.cycles == replay.cycles} ({original.cycles:.0f} cycles)"
    )

    # --- 2. reuse-distance profile ------------------------------------
    # profile_trace memoizes per (trace, line size): asking for another
    # granularity re-profiles instead of silently reusing the first
    # histogram, and asking again is free.
    encoded = encode_events(trace)
    profile = profile_trace(encoded, LINE_BYTES)
    for line_bytes in (LINE_BYTES // 2, LINE_BYTES):
        p = profile_trace(encoded, line_bytes)
        print(
            f"\nreuse profile @ {line_bytes}B: {p.total_accesses} line "
            f"accesses over {p.unique_lines} distinct lines"
        )
    print(f"{'capacity':>12} {'predicted miss rate':>20}")
    for lines in (8, 32, 128, 512, 1024, 4096):
        print(f"{lines:>8} ln  {profile.miss_rate_for(lines):>19.2%}")

    # --- 3. cross-check against the simulator -------------------------
    # A fully associative LRU DL1 with 1024 lines (64 KB) must land on
    # the Mattson prediction exactly.
    from repro.mem.cache import Cache, CacheConfig
    from repro.mem.mainmem import MainMemory
    from repro.mem.request import Access, AccessType
    from repro.workloads.trace import Load, Store

    cache = Cache(
        CacheConfig(
            name="fa-dl1",
            capacity_bytes=64 * 1024,
            associativity=64 * 1024 // LINE_BYTES,
            line_bytes=LINE_BYTES,
            read_hit_cycles=1,
            write_hit_cycles=1,
        ),
        MainMemory(),
    )
    t = 0.0
    for ev in trace:
        if isinstance(ev, (Load, Store)):
            kind = AccessType.WRITE if isinstance(ev, Store) else AccessType.READ
            t += cache.access(Access(ev.addr, ev.size, kind), t) + 1.0
    measured = cache.stats.misses / max(1, cache.stats.accesses)
    predicted = profile.miss_rate_for(1024)
    print(
        f"\n64KB fully-associative check: predicted {predicted:.3%}, "
        f"simulated {measured:.3%}"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "atax")
