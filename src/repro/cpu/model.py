"""Trace-driven, cycle-approximate in-order CPU model.

The paper's platform is a single-core, 1 GHz, in-order ARM (Cortex-A9
like) pipeline simulated in gem5 SE mode.  For the phenomena the paper
studies — L1-D latency on the critical path — the essential behaviours
are:

- **blocking loads** whose exposed latency is the D-cache latency minus
  whatever the pipeline can overlap with independent work
  (:attr:`CPUConfig.load_use_overlap`, one cycle by default: the hit
  latency an in-order pipeline hides in its load-use slot);
- **a small store buffer**: stores retire in the background and only
  stall the core when the buffer is full, so the NVM's 2x write latency
  surfaces as back-pressure rather than per-store stalls — matching the
  paper's observation that the write contribution to the penalty is
  small but grows with kernel write intensity (Figure 4);
- **one cycle per arithmetic op and per taken branch** — the in-order,
  single-issue cost floor that the code transformations attack;
- **prefetch instructions occupy an issue slot** but never block.

Everything else about the core (rename, forwarding details, exact FU
latencies) cancels out of the penalty ratios the paper reports, because
the baseline and NVM configurations share the identical core.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Optional

from ..core.frontend import DCacheFrontend
from ..errors import ConfigurationError
from ..mem.hierarchy import MemoryHierarchy
from ..obs.probe import NULL_PROBE, Probe
from ..workloads.encode import (
    OP_BRANCH,
    OP_COMPUTE,
    OP_LOAD,
    OP_PREFETCH,
    OP_STORE,
    EncodedTrace,
)
from ..workloads.elim import enabled as elim_enabled
from ..workloads.elim import runs_for as elim_runs_for
from ..workloads.trace import Branch, Compute, IRMark, Load, Prefetch, Store, TraceEvent
from .fastpath import make_fast_ops, make_run_applier

#: Load-latency histogram cap: everything slower lands in this bucket.
LOAD_HISTOGRAM_CAP = 256


@dataclass(frozen=True)
class CPUConfig:
    """Timing parameters of the in-order core.

    Attributes
    ----------
    load_use_overlap : float
        Cycles of each load's latency hidden by the pipeline
        (independent-instruction overlap); the exposed stall is
        ``max(1, latency - load_use_overlap)``.  The default (1.5) is
        calibrated so the drop-in STT-MRAM penalty over the PolyBench
        subset averages the paper's ~54% (Figure 1).
    store_buffer_entries : int
        Store-buffer slots; a store stalls the core only when all slots
        hold stores still draining.
    store_issue_cycles : float
        Issue-slot cost of a store instruction.
    branch_cycles : float
        Cost of a back-edge (taken branch).
    branch_mispredict_cycles : float
        Extra cycles charged on not-taken (loop-exit) branches — the
        one branch per loop a simple predictor reliably mispredicts.
        0 by default: the paper's penalties are latency ratios and a
        fixed mispredict cost cancels; exposed as a knob for
        sensitivity studies.
    prefetch_issue_cycles : float
        Issue-slot cost of a prefetch instruction (0.5: the dual-issue
        A9 pairs the hint with real work).
    model_ifetch : bool
        Charge instruction fetches through the IL1 (off for the
        reproduced figures; the IL1 is SRAM in every configuration, so
        it cancels out of the penalties).
    instructions_per_fetch_line : int
        Instructions consumed per 64 B IL1 line when ``model_ifetch``
        is on (4-byte fixed-width ISA with straight-line code: 16).
    code_bytes : int
        Synthetic code footprint the fetch stream loops over.
    """

    load_use_overlap: float = 1.5
    store_buffer_entries: int = 4
    store_issue_cycles: float = 1.0
    branch_cycles: float = 1.0
    branch_mispredict_cycles: float = 0.0
    prefetch_issue_cycles: float = 0.5
    model_ifetch: bool = False
    instructions_per_fetch_line: int = 16
    code_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.load_use_overlap < 0:
            raise ConfigurationError("load-use overlap must be non-negative")
        if self.branch_mispredict_cycles < 0:
            raise ConfigurationError("mispredict penalty must be non-negative")
        if self.store_buffer_entries <= 0:
            raise ConfigurationError("store buffer needs at least one entry")
        if self.instructions_per_fetch_line <= 0 or self.code_bytes <= 0:
            raise ConfigurationError("ifetch parameters must be positive")


@dataclass
class RunResult:
    """Outcome of executing one trace on one system configuration.

    Attributes
    ----------
    cycles : float
        Total execution time in cycles (ns at 1 GHz).
    instructions : int
        Executed instruction count (compute ops + memory ops + branches
        + prefetches).
    breakdown : dict
        Cycles attributed per activity: ``compute``, ``branch``,
        ``load``, ``store``, ``prefetch``, ``ifetch``.
    counts : dict
        Event counts: ``loads``, ``stores``, ``branches``,
        ``prefetches``, ``compute_ops``.
    frontend_stats : dict
        Per-front-end buffer counters.
    dl1_stats : dict
        Backing DL1 counters.
    l2_stats : dict
        L2 counters.
    il1_stats : dict
        IL1 counters (all zero unless ``model_ifetch`` is on).
    mainmem_stats : dict
        Main-memory counters — reads, writes and
        ``channel_busy_cycles`` (plus row-buffer counters under the
        banked DRAM model).
    memory_accesses : int
        DRAM line transfers.
    load_latency_histogram : dict
        Exposed-load-latency distribution, bucketed by whole cycles
        (key = ``int(exposed)``, capped at :data:`LOAD_HISTOGRAM_CAP`).
        The VWB shows up here as a bimodal shape: a 1-cycle hit mode
        and a promotion mode.
    reliability_stats : dict
        Fault-injection counters and cycle totals (see
        :class:`~repro.reliability.faults.ReliabilityStats`); empty
        unless the system was configured with fault injection enabled.
    retired_lines : int
        DL1 line slots retired by graceful degradation during the run
        (0 without fault injection).
    """

    cycles: float
    instructions: int
    breakdown: Dict[str, float]
    counts: Dict[str, int]
    frontend_stats: Dict[str, int] = field(default_factory=dict)
    dl1_stats: Dict[str, int] = field(default_factory=dict)
    l2_stats: Dict[str, int] = field(default_factory=dict)
    il1_stats: Dict[str, int] = field(default_factory=dict)
    mainmem_stats: Dict[str, float] = field(default_factory=dict)
    memory_accesses: int = 0
    load_latency_histogram: Dict[int, int] = field(default_factory=dict)
    reliability_stats: Dict[str, float] = field(default_factory=dict)
    retired_lines: int = 0

    def load_latency_quantile(self, q: float) -> float:
        """Approximate q-quantile (0..1) of the exposed load latency.

        Contract (all boundary cases are defined, never an off-by-one or
        a division by zero):

        - ``q`` outside ``[0, 1]`` raises ``ConfigurationError``;
        - an **empty histogram** (a run with zero loads) returns ``0.0``
          for every ``q``;
        - ``q == 0.0`` returns the **minimum** populated bucket (the
          fastest observed load);
        - ``q == 1.0`` returns the **maximum** populated bucket (the
          slowest observed load);
        - interior quantiles use the inverse-CDF convention: the smallest
          bucket whose cumulative count reaches ``q * total``.

        The histogram buckets are whole cycles capped at
        :data:`LOAD_HISTOGRAM_CAP`: every load slower than the cap lands
        in the cap bucket, so high quantiles (p100 in particular) are
        reported as the cap and are a *lower bound* on the true latency
        whenever the overflow bucket is populated.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1]: {q}")
        hist = self.load_latency_histogram
        if not hist:
            return 0.0
        if q == 0.0:
            return float(min(min(hist), LOAD_HISTOGRAM_CAP))
        if q == 1.0:
            return float(min(max(hist), LOAD_HISTOGRAM_CAP))
        total = sum(hist.values())
        threshold = q * total
        seen = 0
        for bucket in sorted(hist):
            seen += hist[bucket]
            if seen >= threshold:
                return float(min(bucket, LOAD_HISTOGRAM_CAP))
        # Unreachable for q <= 1.0 (the cumulative sum reaches `total`),
        # kept as a safe upper bound against float threshold edge cases.
        return float(min(max(hist), LOAD_HISTOGRAM_CAP))

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0 for an empty run)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def penalty_vs(self, baseline: "RunResult") -> float:
        """Performance penalty in percent relative to ``baseline``.

        This is the metric of every figure in the paper: cycles over the
        SRAM baseline's cycles, minus one, in percent.
        """
        if baseline.cycles <= 0:
            raise ConfigurationError("baseline run has no cycles")
        return (self.cycles - baseline.cycles) / baseline.cycles * 100.0


class InOrderCPU:
    """Executes an architectural event trace against a D-cache front-end.

    Parameters
    ----------
    config : CPUConfig
        Core timing parameters.
    frontend : DCacheFrontend
        The L1-D organisation under test.
    hierarchy : MemoryHierarchy, optional
        Shared backing hierarchy (used for optional i-fetch).
    """

    def __init__(
        self,
        config: CPUConfig,
        frontend: DCacheFrontend,
        hierarchy: Optional[MemoryHierarchy] = None,
    ) -> None:
        if config.model_ifetch and hierarchy is None:
            raise ConfigurationError("i-fetch modelling requires a memory hierarchy")
        self.config = config
        self.frontend = frontend
        self.hierarchy = hierarchy
        self.probe: Probe = NULL_PROBE
        #: Optional event-stream checker (:class:`repro.check.Sanitizer`).
        #: ``None`` (the default) keeps replay on the unchecked fast
        #: paths with zero per-event overhead; when set, `run` wraps the
        #: event stream through ``checker.stream`` and `run_encoded`
        #: falls back to generic object replay (the sanitizer audits the
        #: one canonical implementation of the timing paths).
        self.checker: Optional["EventChecker"] = None
        #: Live view of the store buffer (absolute completion cycles) of
        #: the most recent `run` — one attribute assignment per run, read
        #: by the sanitizer to audit store-buffer occupancy/ordering.
        self.store_queue: Optional[Deque[float]] = None

    def run(self, events: Iterable[TraceEvent]) -> RunResult:
        """Execute ``events`` in order; return the timing result.

        An :class:`~repro.workloads.encode.EncodedTrace` is recognised
        and replayed through :meth:`run_encoded` — same result
        (bit-identical), several times faster.
        """
        if isinstance(events, EncodedTrace):
            return self.run_encoded(events)
        checker = self.checker
        if checker is not None:
            events = checker.stream(events)
        cfg = self.config
        cycles = 0.0
        breakdown = {
            "compute": 0.0,
            "branch": 0.0,
            "load": 0.0,
            "store": 0.0,
            "prefetch": 0.0,
            "ifetch": 0.0,
        }
        counts = {
            "loads": 0,
            "stores": 0,
            "branches": 0,
            "prefetches": 0,
            "compute_ops": 0,
        }
        instructions = 0
        load_histogram: Dict[int, int] = {}
        store_queue: Deque[float] = deque()
        self.store_queue = store_queue
        fetch_budget = 0  # instructions covered by the current IL1 line
        fetch_pc = 0

        frontend = self.frontend
        overlap = cfg.load_use_overlap
        probe = self.probe
        probing = probe.enabled

        for ev in events:
            kind = type(ev)
            if kind is Load:
                counts["loads"] += 1
                instructions += 1
                if probing:
                    probe.begin_op("load", ev.addr, cycles)
                latency = frontend.read(ev.addr, ev.size, cycles)
                exposed = max(1.0, latency - overlap)
                if probing:
                    probe.end_op(exposed, latency)
                cycles += exposed
                breakdown["load"] += exposed
                bucket = min(int(exposed), LOAD_HISTOGRAM_CAP)
                load_histogram[bucket] = load_histogram.get(bucket, 0) + 1
            elif kind is Compute:
                counts["compute_ops"] += ev.ops
                instructions += ev.ops
                cycles += ev.ops
                breakdown["compute"] += ev.ops
                if probing:
                    probe.op("compute", ev.ops, cycles)
            elif kind is Store:
                counts["stores"] += 1
                instructions += 1
                start = cycles
                # Retire drained stores, then stall if the buffer is full.
                while store_queue and store_queue[0] <= cycles:
                    store_queue.popleft()
                if len(store_queue) >= cfg.store_buffer_entries:
                    cycles = store_queue.popleft()
                if probing:
                    probe.begin_op("store", ev.addr, start)
                latency = frontend.write(ev.addr, ev.size, cycles)
                tail = store_queue[-1] if store_queue else cycles
                store_queue.append(max(cycles, tail) + latency)
                cycles += cfg.store_issue_cycles
                breakdown["store"] += cycles - start
                if probing:
                    # The exposed cost is the issue slot plus any wait for
                    # a free store-buffer entry; the write itself retires
                    # in the background.
                    probe.end_op(
                        cycles - start, latency, cycles - start - cfg.store_issue_cycles
                    )
            elif kind is Branch:
                counts["branches"] += 1
                instructions += 1
                cost = cfg.branch_cycles
                if not ev.taken:
                    cost += cfg.branch_mispredict_cycles
                cycles += cost
                breakdown["branch"] += cost
                if probing:
                    probe.op("branch", cost, cycles)
            elif kind is Prefetch:
                counts["prefetches"] += 1
                instructions += 1
                if probing:
                    probe.begin_op("prefetch", ev.addr, cycles)
                stall = frontend.prefetch(ev.addr, cycles)
                cycles += cfg.prefetch_issue_cycles + stall
                breakdown["prefetch"] += cfg.prefetch_issue_cycles + stall
                if probing:
                    probe.end_op(cfg.prefetch_issue_cycles + stall, stall, stall)
            elif kind is IRMark:
                # Zero-cost region annotation (profiling traces only).
                if probing:
                    probe.mark(ev.label, cycles)
                continue

            if cfg.model_ifetch:
                new_instrs = instructions - fetch_budget
                while new_instrs > 0:
                    latency = self.hierarchy.ifetch(fetch_pc, cycles)
                    # A hit overlaps with decode; only misses stall.
                    stall = max(0.0, latency - 1.0)
                    cycles += stall
                    breakdown["ifetch"] += stall
                    if probing and stall > 0.0:
                        probe.op("ifetch", stall, cycles)
                    fetch_pc = (fetch_pc + 64) % cfg.code_bytes
                    fetch_budget += cfg.instructions_per_fetch_line
                    new_instrs -= cfg.instructions_per_fetch_line

        # Drain the store buffer: the kernel is done when memory is.
        # The drain is store work, so it is attributed to the store
        # category — `sum(breakdown.values()) == cycles` holds even when
        # the last event is a store that fills the buffer (identical
        # attribution in `run_encoded`; pinned by tests/test_cpu_model.py).
        if store_queue and store_queue[-1] > cycles:
            drain = store_queue[-1] - cycles
            if probing:
                probe.op("store_buffer_full", drain, cycles)
            breakdown["store"] += drain
            cycles = store_queue[-1]

        return RunResult(
            cycles=cycles,
            instructions=instructions,
            breakdown=breakdown,
            counts=counts,
            frontend_stats=frontend.stats.as_dict(),
            dl1_stats=frontend.backing.stats.as_dict(),
            load_latency_histogram=load_histogram,
        )

    def run_encoded(self, trace: EncodedTrace) -> RunResult:
        """Replay an encoded trace; bit-identical to :meth:`run` on it.

        The hot loop dispatches on the integer opcode stream with every
        counter bound to a local, a preallocated latency-histogram list
        instead of per-event dict traffic, and the front-end's inlined
        hit kernels (:func:`~repro.cpu.fastpath.make_fast_ops`) serving
        the common single-line hits — anything else falls back to the
        generic ``frontend.read``/``write`` call for that event, so the
        timing arithmetic is evaluated in the identical order and the
        result is bit-identical (pinned by ``tests/test_encode.py``).

        Probed and i-fetch-modelling runs replay the decoded event
        stream through :meth:`run` instead: probe callbacks fire with
        exactly the object path's arguments and ordering.
        """
        cfg = self.config
        if self.probe.enabled or cfg.model_ifetch or self.checker is not None:
            return self.run(trace.decode_iter())

        frontend = self.frontend
        if elim_enabled():
            applier = make_run_applier(frontend, cfg)
            if applier is not None:
                runs = elim_runs_for(trace, applier.shape)
                if runs:
                    return self._run_encoded_elim(trace, applier, runs)
        fast = make_fast_ops(frontend)
        fast_read, fast_write = fast if fast is not None else (None, None)
        frontend_read = frontend.read
        frontend_write = frontend.write
        frontend_prefetch = frontend.prefetch

        # Operand columns as bound iterators: each kind's stream is
        # consumed strictly in opcode order, so a `next` per event
        # replaces index-plus-cursor bookkeeping in the hot loop.
        ops_col = trace.ops
        next_load_addr = iter(trace.load_addrs).__next__
        next_load_size = iter(trace.load_sizes).__next__
        next_store_addr = iter(trace.store_addrs).__next__
        next_store_size = iter(trace.store_sizes).__next__
        next_pf_addr = iter(trace.pf_addrs).__next__
        next_ops = iter(ops_col).__next__
        next_taken = iter(trace.taken).__next__
        op_load, op_compute, op_store = OP_LOAD, OP_COMPUTE, OP_STORE
        op_branch, op_prefetch = OP_BRANCH, OP_PREFETCH

        # Accumulator locals (same float-addition order as `run`).
        cycles = 0.0
        b_compute = b_branch = b_load = b_store = b_prefetch = 0.0
        cap = LOAD_HISTOGRAM_CAP
        hist = [0] * (cap + 1)
        store_queue: Deque[float] = deque()
        self.store_queue = store_queue
        sq_popleft = store_queue.popleft
        sq_append = store_queue.append
        sb_entries = cfg.store_buffer_entries
        store_issue = cfg.store_issue_cycles
        overlap = cfg.load_use_overlap
        pf_issue = cfg.prefetch_issue_cycles
        taken_cost = cfg.branch_cycles
        exit_cost = cfg.branch_cycles + cfg.branch_mispredict_cycles

        for op in trace.opcodes:
            if op == op_load:
                addr = next_load_addr()
                size = next_load_size()
                if fast_read is not None:
                    latency = fast_read(addr, size, cycles)
                    if latency is None:
                        latency = frontend_read(addr, size, cycles)
                else:
                    latency = frontend_read(addr, size, cycles)
                exposed = latency - overlap
                if exposed < 1.0:
                    exposed = 1.0
                cycles += exposed
                b_load += exposed
                bucket = int(exposed)
                hist[bucket if bucket < cap else cap] += 1
            elif op == op_compute:
                o = next_ops()
                cycles += o
                b_compute += o
            elif op == op_store:
                addr = next_store_addr()
                size = next_store_size()
                start = cycles
                # Retire drained stores, then stall if the buffer is full.
                while store_queue and store_queue[0] <= cycles:
                    sq_popleft()
                if len(store_queue) >= sb_entries:
                    cycles = sq_popleft()
                if fast_write is not None:
                    latency = fast_write(addr, size, cycles)
                    if latency is None:
                        latency = frontend_write(addr, size, cycles)
                else:
                    latency = frontend_write(addr, size, cycles)
                tail = store_queue[-1] if store_queue else cycles
                sq_append(max(cycles, tail) + latency)
                cycles += store_issue
                b_store += cycles - start
            elif op == op_branch:
                cost = taken_cost if next_taken() else exit_cost
                cycles += cost
                b_branch += cost
            elif op == op_prefetch:
                stall = frontend_prefetch(next_pf_addr(), cycles)
                cost = pf_issue + stall
                cycles += cost
                b_prefetch += cost
            # else OP_MARK: zero-cost annotation, nothing to do unprobed.

        # Drain the store buffer: the kernel is done when memory is.
        # Same final-drain attribution as `run`: the drain books under
        # the store category in both replay paths, bit-identically.
        if store_queue and store_queue[-1] > cycles:
            b_store += store_queue[-1] - cycles
            cycles = store_queue[-1]

        # Event totals come straight from the column lengths; they equal
        # the per-event increments of the object path exactly (integers).
        n_loads, n_stores = len(trace.load_addrs), len(trace.store_addrs)
        n_branches, n_prefetches = len(trace.taken), len(trace.pf_addrs)
        total_ops = sum(ops_col)
        return RunResult(
            cycles=cycles,
            instructions=n_loads + n_stores + n_branches + n_prefetches + total_ops,
            breakdown={
                "compute": b_compute,
                "branch": b_branch,
                "load": b_load,
                "store": b_store,
                "prefetch": b_prefetch,
                "ifetch": 0.0,
            },
            counts={
                "loads": n_loads,
                "stores": n_stores,
                "branches": n_branches,
                "prefetches": n_prefetches,
                "compute_ops": total_ops,
            },
            frontend_stats=frontend.stats.as_dict(),
            dl1_stats=frontend.backing.stats.as_dict(),
            load_latency_histogram={b: n for b, n in enumerate(hist) if n},
        )

    def _run_encoded_elim(self, trace: EncodedTrace, applier, runs) -> RunResult:
        """Encoded replay consuming guaranteed-hit runs in one step each.

        The gap events between runs (misses, dirty transitions, spanning
        accesses and everything around them) replay through exactly
        :meth:`run_encoded`'s per-event arithmetic — same fast kernels,
        same accumulator order — while each annotated run is consumed by
        one ``applier.apply`` call that advances the clock, ledger,
        store queue, bank busy times, LRU orders and stat counters to
        bit-identical values (tiers and gates in
        :func:`~repro.cpu.fastpath.make_run_applier`).  Runs never start
        on marks and never exist in prefetch-bearing traces, so the gap
        loop needs no mark or prefetch special cases beyond
        :meth:`run_encoded`'s own.
        """
        cfg = self.config
        frontend = self.frontend
        fast = make_fast_ops(frontend)
        fast_read, fast_write = fast if fast is not None else (None, None)
        frontend_read = frontend.read
        frontend_write = frontend.write

        opcodes = trace.opcodes
        la, lsz = trace.load_addrs, trace.load_sizes
        sa, ssz = trace.store_addrs, trace.store_sizes
        ops_col, tk_col = trace.ops, trace.taken
        op_load, op_compute = OP_LOAD, OP_COMPUTE
        op_store, op_branch = OP_STORE, OP_BRANCH

        cycles = 0.0
        b_compute = b_branch = b_load = b_store = b_prefetch = 0.0
        cap = LOAD_HISTOGRAM_CAP
        hist = [0] * (cap + 1)
        store_queue: Deque[float] = deque()
        self.store_queue = store_queue
        sq_popleft = store_queue.popleft
        sq_append = store_queue.append
        sb_entries = cfg.store_buffer_entries
        store_issue = cfg.store_issue_cycles
        overlap = cfg.load_use_overlap
        taken_cost = cfg.branch_cycles
        exit_cost = cfg.branch_cycles + cfg.branch_mispredict_cycles

        apply_run = applier.apply
        run_idx = 0
        n_runs = len(runs)
        next_start = runs[0].start
        li = si = ci = ti = 0
        i = 0
        n = len(opcodes)
        while i < n:
            if i == next_start:
                run = runs[run_idx]
                cycles, b_compute, b_branch, b_load, b_store = apply_run(
                    run, cycles, b_compute, b_branch, b_load, b_store,
                    store_queue, hist,
                )
                nl, ns, nc, _ops, ntk, nex = run.counts
                li += nl
                si += ns
                ci += nc
                ti += ntk + nex
                i = run.end
                run_idx += 1
                next_start = runs[run_idx].start if run_idx < n_runs else -1
                continue
            op = opcodes[i]
            i += 1
            if op == op_load:
                addr = la[li]
                size = lsz[li]
                li += 1
                if fast_read is not None:
                    latency = fast_read(addr, size, cycles)
                    if latency is None:
                        latency = frontend_read(addr, size, cycles)
                else:
                    latency = frontend_read(addr, size, cycles)
                exposed = latency - overlap
                if exposed < 1.0:
                    exposed = 1.0
                cycles += exposed
                b_load += exposed
                bucket = int(exposed)
                hist[bucket if bucket < cap else cap] += 1
            elif op == op_compute:
                o = ops_col[ci]
                ci += 1
                cycles += o
                b_compute += o
            elif op == op_store:
                addr = sa[si]
                size = ssz[si]
                si += 1
                start = cycles
                while store_queue and store_queue[0] <= cycles:
                    sq_popleft()
                if len(store_queue) >= sb_entries:
                    cycles = sq_popleft()
                if fast_write is not None:
                    latency = fast_write(addr, size, cycles)
                    if latency is None:
                        latency = frontend_write(addr, size, cycles)
                else:
                    latency = frontend_write(addr, size, cycles)
                tail = store_queue[-1] if store_queue else cycles
                sq_append(max(cycles, tail) + latency)
                cycles += store_issue
                b_store += cycles - start
            elif op == op_branch:
                cost = taken_cost if tk_col[ti] else exit_cost
                cycles += cost
                b_branch += cost
            # else OP_MARK: zero-cost annotation, nothing to do unprobed.

        if store_queue and store_queue[-1] > cycles:
            b_store += store_queue[-1] - cycles
            cycles = store_queue[-1]

        n_loads, n_stores = len(la), len(sa)
        n_branches, n_prefetches = len(tk_col), len(trace.pf_addrs)
        total_ops = sum(ops_col)
        return RunResult(
            cycles=cycles,
            instructions=n_loads + n_stores + n_branches + n_prefetches + total_ops,
            breakdown={
                "compute": b_compute,
                "branch": b_branch,
                "load": b_load,
                "store": b_store,
                "prefetch": b_prefetch,
                "ifetch": 0.0,
            },
            counts={
                "loads": n_loads,
                "stores": n_stores,
                "branches": n_branches,
                "prefetches": n_prefetches,
                "compute_ops": total_ops,
            },
            frontend_stats=frontend.stats.as_dict(),
            dl1_stats=frontend.backing.stats.as_dict(),
            load_latency_histogram={b: n for b, n in enumerate(hist) if n},
        )
