"""Bench: Figure 8 — VWB vs equal-capacity L0 cache and EMSHR.

Paper shape: "Our proposal offers almost twice the penalty reduction as
compared to the other previous proposals."
"""

from repro.experiments import fig8
from repro.transforms.pipeline import OptLevel

from conftest import run_once


def test_fig8(benchmark, runner, save):
    result = run_once(benchmark, fig8.run, runner=runner)
    save(result)
    avg = result.averages()
    assert avg["vwb"] < avg["l0"]
    assert avg["vwb"] < avg["emshr"]
    # "Almost twice the penalty reduction" vs the rivals' average.
    dropin = sum(runner.penalties("dropin", OptLevel.FULL)) / len(runner.kernels)
    vwb_red = dropin - avg["vwb"]
    rivals_red = dropin - (avg["l0"] + avg["emshr"]) / 2.0
    assert vwb_red > 1.4 * rivals_red
