"""Replacement policies, including an LRU reference-model property test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mem.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)


class TestLRU:
    def test_prefers_invalid_ways(self):
        state = LRUPolicy().make_set(4)
        assert state.victim([True, False, True, True]) == 1

    def test_evicts_least_recent(self):
        state = LRUPolicy().make_set(3)
        state.touch(0)
        state.touch(1)
        state.touch(2)
        state.touch(0)
        assert state.victim([True, True, True]) == 1

    def test_single_way(self):
        state = LRUPolicy().make_set(1)
        state.touch(0)
        assert state.victim([True]) == 0

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_model(self, touches):
        """Exact-LRU state must match a list-based reference model."""
        assoc = 4
        state = LRUPolicy().make_set(assoc)
        reference = list(range(assoc))  # most recent first
        for way in touches:
            state.touch(way)
            reference.remove(way)
            reference.insert(0, way)
        assert state.victim([True] * assoc) == reference[-1]


class TestFIFO:
    def test_ignores_touches(self):
        state = FIFOPolicy().make_set(2)
        assert state.victim([True, True]) == 0
        state.touch(1)
        assert state.victim([True, True]) == 1  # rotation, not recency

    def test_rotates(self):
        state = FIFOPolicy().make_set(3)
        assert [state.victim([True] * 3) for _ in range(4)] == [0, 1, 2, 0]

    def test_prefers_invalid(self):
        state = FIFOPolicy().make_set(2)
        assert state.victim([True, False]) == 1


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(seed=7).make_set(8)
        b = RandomPolicy(seed=7).make_set(8)
        seq_a = [a.victim([True] * 8) for _ in range(20)]
        seq_b = [b.victim([True] * 8) for _ in range(20)]
        assert seq_a == seq_b

    def test_in_range(self):
        state = RandomPolicy(seed=1).make_set(4)
        for _ in range(50):
            assert 0 <= state.victim([True] * 4) < 4

    def test_prefers_invalid(self):
        state = RandomPolicy(seed=1).make_set(4)
        assert state.victim([True, True, False, True]) == 2


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            TreePLRUPolicy().make_set(3)

    def test_victim_from_cold_subtree(self):
        # After touching both left-subtree ways, the root bit points
        # right: the victim must come from the untouched right pair.
        state = TreePLRUPolicy().make_set(4)
        state.touch(0)
        state.touch(1)
        assert state.victim([True] * 4) in (2, 3)

    def test_single_way(self):
        state = TreePLRUPolicy().make_set(1)
        assert state.victim([True]) == 0

    def test_never_evicts_most_recent(self):
        state = TreePLRUPolicy().make_set(8)
        for way in (5, 2, 7, 1, 5):
            state.touch(way)
        assert state.victim([True] * 8) != 5

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_victim_is_not_last_touched(self, touches):
        state = TreePLRUPolicy().make_set(8)
        for way in touches:
            state.touch(way)
        assert state.victim([True] * 8) != touches[-1]


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LRUPolicy), ("fifo", FIFOPolicy), ("random", RandomPolicy), ("plru", TreePLRUPolicy)],
    )
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("mru")
