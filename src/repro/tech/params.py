"""Per-technology memory parameters and the paper's 32 nm presets.

Table I of the paper compares a 64 KB SRAM L1 D-cache against a 64 KB
STT-MRAM one at the 32 nm high-performance node:

========================  =========  ============
Parameter                 SRAM       STT-MRAM
========================  =========  ============
Read latency              0.787 ns   3.37 ns
Write latency             0.773 ns   1.86 ns
Leakage                   75.5 mW*   28.35 mW
Cell area                 146 F^2    42 F^2
Associativity             2-way      2-way
Cache line size           256 bit    512 bit
========================  =========  ============

(*) The SRAM leakage cell is corrupted in the available text; 75.5 mW is a
reconstruction consistent with the paper's qualitative claim (STT-MRAM
leaks far less than 32 nm HP SRAM).  Only the energy *extension* consumes
it; every reproduced figure depends on latencies alone.

The STT-MRAM numbers correspond to the advanced perpendicular dual-MTJ
(2T-2MTJ) cell of Noguchi et al. (VLSI 2014) after scaling, per the paper.
ReRAM and PRAM presets are included because Section II positions STT-MRAM
against them (endurance ~1e12 writes for ReRAM/PRAM vs ~1e15+ for
STT-MRAM, very high PRAM write latency); they let users reproduce the
paper's technology-choice argument quantitatively.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from ..errors import ConfigurationError

#: Attempt time of thermally-activated magnetisation switching (the
#: inverse attempt frequency ~1 GHz), in nanoseconds.  Standard constant
#: of the thermal write-error model below.
THERMAL_ATTEMPT_TIME_NS = 1.0

#: Default write-current overdrive (I / Ic0) assumed by
#: :meth:`MemoryTechnology.write_error_rate`.  1.03 reproduces the
#: single-digit-ppm raw bit error rates reported for dual-MTJ cells at
#: nominal write pulses; raise it to model a more aggressively driven
#: (lower-WER, higher-energy) array.
DEFAULT_WRITE_OVERDRIVE = 1.03


class TechnologyKind(enum.Enum):
    """Broad class of a memory technology, used for policy decisions.

    Volatile technologies (SRAM) lose state on power-down and leak
    statically; non-volatile ones (STT-MRAM, ReRAM, PRAM) retain state and
    have negligible cell leakage but asymmetric, slower accesses.
    """

    SRAM = "sram"
    STT_MRAM = "stt-mram"
    RERAM = "reram"
    PRAM = "pram"

    @property
    def non_volatile(self) -> bool:
        """True for NVM technologies (everything except SRAM)."""
        return self is not TechnologyKind.SRAM


@dataclass(frozen=True)
class MemoryTechnology:
    """Electrical and geometric parameters of one memory technology node.

    Instances are immutable; derive variants with
    :func:`dataclasses.replace` or :func:`repro.tech.scaling.scale_technology`.

    Attributes:
        name: Human-readable identifier (e.g. ``"STT-MRAM 32nm"``).
        kind: Technology class, see :class:`TechnologyKind`.
        feature_nm: Feature size F in nanometres.
        read_latency_ns: Array read access time for the reference 64 KB
            geometry of Table I.
        write_latency_ns: Array write access time for the same geometry.
        leakage_mw: Static leakage power of the reference 64 KB array in
            milliwatts (cells + periphery).
        cell_area_f2: Bit-cell area in F^2.
        read_energy_pj_per_bit: Dynamic energy per bit read.
        write_energy_pj_per_bit: Dynamic energy per bit written.
        endurance_writes: Number of write cycles a cell sustains before
            wear-out (``float("inf")`` for SRAM).
        retention_seconds: Data retention without power (0 for SRAM).
        thermal_stability: Thermal stability factor Δ = E_b / k_B·T of
            the storage element (dimensionless).  Governs both retention
            and the stochastic write-error rate of NVM cells; 0 for SRAM
            (its cell is bistable-by-feedback, not by an energy
            barrier, and writes are deterministic).
    """

    name: str
    kind: TechnologyKind
    feature_nm: float
    read_latency_ns: float
    write_latency_ns: float
    leakage_mw: float
    cell_area_f2: float
    read_energy_pj_per_bit: float
    write_energy_pj_per_bit: float
    endurance_writes: float
    retention_seconds: float
    thermal_stability: float = 0.0

    def __post_init__(self) -> None:
        if self.thermal_stability < 0:
            raise ConfigurationError(
                f"thermal stability must be non-negative for {self.name}"
            )
        if self.feature_nm <= 0:
            raise ConfigurationError(f"feature size must be positive: {self.feature_nm}")
        if self.read_latency_ns <= 0 or self.write_latency_ns <= 0:
            raise ConfigurationError(f"latencies must be positive for {self.name}")
        if self.leakage_mw < 0 or self.cell_area_f2 <= 0:
            raise ConfigurationError(f"leakage/area out of range for {self.name}")
        if self.read_energy_pj_per_bit < 0 or self.write_energy_pj_per_bit < 0:
            raise ConfigurationError(f"energies must be non-negative for {self.name}")
        if self.endurance_writes <= 0:
            raise ConfigurationError(f"endurance must be positive for {self.name}")

    @property
    def non_volatile(self) -> bool:
        """True if the technology retains data without power."""
        return self.kind.non_volatile

    @property
    def write_read_latency_ratio(self) -> float:
        """Write latency over read latency; >1 for write-limited cells."""
        return self.write_latency_ns / self.read_latency_ns

    def with_latencies(self, read_ns: float, write_ns: float) -> "MemoryTechnology":
        """Return a copy with overridden access latencies.

        Used by sensitivity sweeps (e.g. the Figure 4 attribution runs set
        the NVM read latency to the SRAM value to isolate the write
        penalty).
        """
        return replace(self, read_latency_ns=read_ns, write_latency_ns=write_ns)

    def write_error_rate(
        self,
        pulse_ns: "float | None" = None,
        overdrive: float = DEFAULT_WRITE_OVERDRIVE,
    ) -> float:
        """Raw per-bit write error rate under the thermal-activation model.

        Spin-transfer-torque switching is thermally activated: a write
        pulse of duration ``t`` fails to switch the cell with
        probability ``WER(t) = exp(-t / tau)`` where the switching time
        constant ``tau = tau0 * exp(-Δ * (I/Ic0 - 1))`` shortens
        exponentially with current overdrive (Khoshavi et al.; Noguchi
        et al., VLSI 2014).  Longer pulses and harder drive both buy
        exponentially lower error rates — which is exactly the
        latency/reliability trade the write-verify-retry policy exploits
        by re-issuing only the failed writes.

        Args:
            pulse_ns: Write pulse duration; defaults to the
                technology's nominal write latency.
            overdrive: Write current as a fraction of the critical
                switching current (I/Ic0); must exceed 1.

        Returns:
            Per-bit write failure probability in [0, 1); exactly 0.0
            for technologies without an energy barrier
            (``thermal_stability == 0``, i.e. SRAM), whose writes are
            deterministic.

        Raises:
            ConfigurationError: If the pulse is not positive or the
                overdrive does not exceed 1.
        """
        if self.thermal_stability == 0.0:
            return 0.0
        t = self.write_latency_ns if pulse_ns is None else pulse_ns
        if t <= 0:
            raise ConfigurationError(f"write pulse must be positive: {t} ns")
        if overdrive <= 1.0:
            raise ConfigurationError(
                f"overdrive must exceed the critical current: {overdrive}"
            )
        tau_ns = THERMAL_ATTEMPT_TIME_NS * math.exp(
            -self.thermal_stability * (overdrive - 1.0)
        )
        return math.exp(-t / tau_ns)


#: 32 nm high-performance SRAM — Table I left column.
SRAM_32NM_HP = MemoryTechnology(
    name="SRAM 32nm HP",
    kind=TechnologyKind.SRAM,
    feature_nm=32.0,
    read_latency_ns=0.787,
    write_latency_ns=0.773,
    leakage_mw=75.5,
    cell_area_f2=146.0,
    read_energy_pj_per_bit=0.08,
    write_energy_pj_per_bit=0.08,
    endurance_writes=float("inf"),
    retention_seconds=0.0,
)

#: 32 nm perpendicular dual-MTJ STT-MRAM — Table I right column.
STT_MRAM_32NM = MemoryTechnology(
    name="STT-MRAM 32nm",
    kind=TechnologyKind.STT_MRAM,
    feature_nm=32.0,
    read_latency_ns=3.37,
    write_latency_ns=1.86,
    leakage_mw=28.35,
    cell_area_f2=42.0,
    read_energy_pj_per_bit=0.04,
    write_energy_pj_per_bit=0.30,
    endurance_writes=1e15,
    retention_seconds=10.0 * 365 * 24 * 3600,
    thermal_stability=60.0,
)

#: 32 nm ReRAM — Section II comparison point (fast reads, poor endurance).
RERAM_32NM = MemoryTechnology(
    name="ReRAM 32nm",
    kind=TechnologyKind.RERAM,
    feature_nm=32.0,
    read_latency_ns=2.2,
    write_latency_ns=9.5,
    leakage_mw=20.0,
    cell_area_f2=20.0,
    read_energy_pj_per_bit=0.03,
    write_energy_pj_per_bit=0.60,
    endurance_writes=1e11,
    retention_seconds=10.0 * 365 * 24 * 3600,
    thermal_stability=55.0,
)

#: 32 nm PRAM — Section II comparison point (very slow writes).
PRAM_32NM = MemoryTechnology(
    name="PRAM 32nm",
    kind=TechnologyKind.PRAM,
    feature_nm=32.0,
    read_latency_ns=4.5,
    write_latency_ns=60.0,
    leakage_mw=18.0,
    cell_area_f2=16.0,
    read_energy_pj_per_bit=0.05,
    write_energy_pj_per_bit=1.20,
    endurance_writes=1e9,
    retention_seconds=10.0 * 365 * 24 * 3600,
    thermal_stability=55.0,
)

#: Registry of presets, keyed by short names accepted on the CLI.
TECHNOLOGY_PRESETS = {
    "sram": SRAM_32NM_HP,
    "stt-mram": STT_MRAM_32NM,
    "reram": RERAM_32NM,
    "pram": PRAM_32NM,
}


def get_technology(name: str) -> MemoryTechnology:
    """Look up a technology preset by its short name.

    Args:
        name: One of ``"sram"``, ``"stt-mram"``, ``"reram"``, ``"pram"``
            (case-insensitive).

    Raises:
        ConfigurationError: If the name is unknown, with the list of valid
            names in the message.
    """
    key = name.strip().lower()
    if key not in TECHNOLOGY_PRESETS:
        valid = ", ".join(sorted(TECHNOLOGY_PRESETS))
        raise ConfigurationError(f"unknown technology {name!r}; expected one of: {valid}")
    return TECHNOLOGY_PRESETS[key]
