"""Counters, gauges and summary histograms for the experiment engine.

A :class:`MetricsRegistry` is a plain in-memory accumulator: the
execution engine counts run-cache hits/misses/stale/corrupt entries,
observes per-point wall time and queue depth, and gauges worker
configuration into one registry per engine.  The registry is always on
— updates are one dict operation per *point* (not per simulated event),
so the cost is invisible next to a simulation — and is surfaced through
``ExecStats.summary()``, the run manifest and ``repro status``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class HistogramSummary:
    """Streaming summary statistics of one observed series."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one observation into the summary.

        Parameters
        ----------
        value : float
            The observed sample.
        """
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (``count``/``total``/``min``/``max``/``mean``)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean(),
        }


class MetricsRegistry:
    """Named counters, gauges and histogram summaries.

    Names are dotted strings (``cache.hits``, ``point.wall_s``); the
    registry imposes no schema — whoever renders it sorts by name.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramSummary] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at 0).

        Parameters
        ----------
        name : str
            Counter name.
        n : int
            Increment (default 1).
        """
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``.

        Parameters
        ----------
        name : str
            Gauge name.
        value : float
            Current value (overwrites the previous one).
        """
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the histogram summary ``name``.

        Parameters
        ----------
        name : str
            Histogram name.
        value : float
            The sample.
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramSummary()
        hist.observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every metric, sorted by name.

        Returns
        -------
        dict
            ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``
            with histogram values in :meth:`HistogramSummary.as_dict`
            form.
        """
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].as_dict() for k in sorted(self.histograms)},
        }

    def render(self) -> str:
        """Aligned text table of the registry, for ``repro status``.

        Returns
        -------
        str
            One line per metric; histograms show count/mean/min/max.
        """
        return render_snapshot(self.snapshot())


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """Aligned text table of a :meth:`MetricsRegistry.snapshot` dump.

    Works on the live registry and on a snapshot loaded back from a run
    manifest — ``repro status`` uses the latter.

    Parameters
    ----------
    snapshot : dict
        A ``{"counters": ..., "gauges": ..., "histograms": ...}``
        mapping.

    Returns
    -------
    str
        One indented line per metric.
    """
    lines: List[str] = []
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        lines.append(f"  {name:<28} {value}")
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        lines.append(f"  {name:<28} {value:.3f}")
    for name, h in sorted((snapshot.get("histograms") or {}).items()):
        lines.append(
            f"  {name:<28} n={h['count']} mean={h['mean']:.3f} "
            f"min={h['min'] or 0.0:.3f} max={h['max'] or 0.0:.3f}"
        )
    return "\n".join(lines)
