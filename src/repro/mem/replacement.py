"""Replacement policies for set-associative caches.

Each policy manufactures one small state object per cache set.  The cache
calls :meth:`SetState.touch` on every hit/fill and :meth:`SetState.victim`
when it needs a way to evict.  Policies never see addresses — only way
indices — which keeps them reusable for the VWB's line pair, the L0
cache, and MSHR files.

LRU is the paper's (and gem5's) default; FIFO, tree-PLRU and random are
provided for the replacement-policy ablation bench.
"""

from __future__ import annotations

import abc
import random
from typing import List, Sequence

from ..errors import ConfigurationError
from ..reliability.rng import make_rng
from ..units import is_power_of_two


class SetState(abc.ABC):
    """Replacement bookkeeping for one cache set."""

    @abc.abstractmethod
    def touch(self, way: int) -> None:
        """Record a reference to ``way`` (hit or fill)."""

    @abc.abstractmethod
    def victim(self, valid: Sequence[bool]) -> int:
        """Choose the way to evict.

        Args:
            valid: Per-way validity; invalid ways must be preferred so the
                cache never evicts live data while empty ways exist.

        Returns:
            A way index in ``range(len(valid))``.
        """


class ReplacementPolicy(abc.ABC):
    """Factory for per-set replacement state."""

    name: str = "base"

    @abc.abstractmethod
    def make_set(self, assoc: int) -> SetState:
        """Create state for one set of ``assoc`` ways."""


class _LRUSet(SetState):
    """Exact LRU: maintains ways ordered from MRU to LRU."""

    def __init__(self, assoc: int) -> None:
        self._order: List[int] = list(range(assoc))

    def touch(self, way: int) -> None:
        self._order.remove(way)
        self._order.insert(0, way)

    def victim(self, valid: Sequence[bool]) -> int:
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        return self._order[-1]


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement (the paper's default)."""

    name = "lru"

    def make_set(self, assoc: int) -> SetState:
        return _LRUSet(assoc)


class _FIFOSet(SetState):
    """FIFO: evict in fill order, ignoring hits."""

    def __init__(self, assoc: int) -> None:
        self._assoc = assoc
        self._next = 0

    def touch(self, way: int) -> None:
        # FIFO ignores references; rotation happens in victim().
        return None

    def victim(self, valid: Sequence[bool]) -> int:
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        choice = self._next
        self._next = (self._next + 1) % self._assoc
        return choice


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out replacement."""

    name = "fifo"

    def make_set(self, assoc: int) -> SetState:
        return _FIFOSet(assoc)


class _RandomSet(SetState):
    """Uniform random eviction from a seeded generator (reproducible)."""

    def __init__(self, assoc: int, rng: random.Random) -> None:
        self._assoc = assoc
        self._rng = rng

    def touch(self, way: int) -> None:
        return None

    def victim(self, valid: Sequence[bool]) -> int:
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        return self._rng.randrange(self._assoc)


class RandomPolicy(ReplacementPolicy):
    """Random replacement with a shared, seeded generator.

    All sets draw from one :class:`random.Random` so a cache's eviction
    sequence is a deterministic function of the seed and access stream.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = make_rng(seed)

    def make_set(self, assoc: int) -> SetState:
        return _RandomSet(assoc, self._rng)


class _TreePLRUSet(SetState):
    """Tree pseudo-LRU over a power-of-two number of ways."""

    def __init__(self, assoc: int) -> None:
        if not is_power_of_two(assoc):
            raise ConfigurationError(f"tree-PLRU requires power-of-two ways, got {assoc}")
        self._assoc = assoc
        # One bit per internal node of a complete binary tree; bit value 0
        # means "the LRU side is the left subtree".
        self._bits = [0] * max(1, assoc - 1)

    def touch(self, way: int) -> None:
        if self._assoc == 1:
            return
        node = 0
        lo, hi = 0, self._assoc
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # LRU side is now the right subtree
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0
                node = 2 * node + 2
                lo = mid

    def victim(self, valid: Sequence[bool]) -> int:
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        if self._assoc == 1:
            return 0
        node = 0
        lo, hi = 0, self._assoc
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node] == 0:  # LRU side is the left subtree
                node = 2 * node + 1
                hi = mid
            else:
                node = 2 * node + 2
                lo = mid
        return lo


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU, the usual hardware approximation of LRU."""

    name = "plru"

    def make_set(self, assoc: int) -> SetState:
        return _TreePLRUSet(assoc)


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Construct a policy by short name (``lru``/``fifo``/``random``/``plru``)."""
    key = name.strip().lower()
    if key == "lru":
        return LRUPolicy()
    if key == "fifo":
        return FIFOPolicy()
    if key == "random":
        return RandomPolicy(seed)
    if key == "plru":
        return TreePLRUPolicy()
    raise ConfigurationError(f"unknown replacement policy {name!r}")
