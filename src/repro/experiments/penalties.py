"""All-configuration penalty table: the evaluation grid in one figure.

Runs every NVM D-cache organisation of the study (drop-in replacement,
VWB, L0 filter cache, Enhanced MSHR, hybrid partition) over the full
kernel list against the SRAM baseline and reports per-kernel penalties.
This is the suite's canonical "everything" workload: each kernel's trace
is encoded once and replayed through all six systems, which is exactly
the shape ``benchmarks/bench_trace.py`` and the ``trace-fastpath`` CI
job time — and, diffed against a committed golden table, the
bit-exactness oracle for the encoded replay path.
"""

from __future__ import annotations

from typing import Optional

from ..transforms.pipeline import OptLevel
from .report import FigureResult
from .runner import ExperimentRunner

#: The NVM organisations, in CONFIGURATIONS order (sram is the baseline).
NVM_CONFIGS = ("dropin", "vwb", "l0", "emshr", "hybrid")


def run(runner: Optional[ExperimentRunner] = None, level: OptLevel = OptLevel.NONE) -> FigureResult:
    """Per-kernel penalties of every NVM configuration vs SRAM.

    Parameters
    ----------
    runner : ExperimentRunner, optional
        Shared runner (a fresh one is built when omitted).
    level : OptLevel
        Optimization level every configuration (and the baseline) runs.

    Returns
    -------
    FigureResult
        One series per NVM configuration, one row per kernel.
    """
    runner = runner or ExperimentRunner()
    # Prefetch the whole grid up front: per kernel, the SRAM baseline
    # and all five NVM organisations replay as six lanes of one batched
    # pass (or one engine fan-out), instead of per-config pairs.
    runner.prefetch(
        [(name, k, level) for name in NVM_CONFIGS for k in runner.kernels]
        + [("sram", k, level) for k in runner.kernels]
    )
    series = {name: runner.penalties(name, level) for name in NVM_CONFIGS}
    averages = {
        name: sum(vals) / len(vals) for name, vals in series.items()
    }
    best = min(averages, key=averages.get)
    return FigureResult(
        name="penalties",
        title=f"Penalty vs SRAM baseline, all NVM configurations ({level.name} code)",
        labels=list(runner.kernels),
        series=series,
        notes=[
            "every kernel trace encoded once and replayed through all six systems",
            f"lowest average penalty: {best} ({averages[best]:.1f}%)",
        ],
    )
