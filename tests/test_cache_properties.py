"""Property-based cache verification against a reference model.

The reference model is an order-of-magnitude simpler simulator: a dict of
sets, each holding an MRU-ordered list of (tag, dirty).  For any access
stream, the real cache's hit/miss classification and final contents must
match it exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import Cache, CacheConfig
from repro.mem.mainmem import MainMemory
from repro.mem.request import Access, AccessType


class ReferenceCache:
    """Dict-based LRU write-back/write-allocate reference model."""

    def __init__(self, sets: int, assoc: int, line_bytes: int) -> None:
        self.sets = sets
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.contents = {s: [] for s in range(sets)}  # MRU-first [tag, dirty]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int, is_write: bool) -> None:
        line = addr // self.line_bytes
        index = line % self.sets
        tag = line // self.sets
        ways = self.contents[index]
        for entry in ways:
            if entry[0] == tag:
                self.hits += 1
                ways.remove(entry)
                entry[1] = entry[1] or is_write
                ways.insert(0, entry)
                return
        self.misses += 1
        if len(ways) >= self.assoc:
            ways.pop()
        ways.insert(0, [tag, is_write])

    def resident(self, addr: int) -> bool:
        line = addr // self.line_bytes
        return any(e[0] == line // self.sets for e in self.contents[line % self.sets])

    def dirty(self, addr: int) -> bool:
        line = addr // self.line_bytes
        for e in self.contents[line % self.sets]:
            if e[0] == line // self.sets:
                return e[1]
        return False


def make_pair(sets=4, assoc=2, line_bytes=64):
    cache = Cache(
        CacheConfig(
            name="p",
            capacity_bytes=sets * assoc * line_bytes,
            associativity=assoc,
            line_bytes=line_bytes,
            read_hit_cycles=1,
            write_hit_cycles=1,
        ),
        MainMemory(latency_cycles=10.0, transfer_cycles=0.0),
    )
    return cache, ReferenceCache(sets, assoc, line_bytes)


_accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4095),  # address (64 lines)
        st.booleans(),  # is_write
    ),
    min_size=1,
    max_size=200,
)


class TestAgainstReferenceModel:
    @given(_accesses)
    @settings(max_examples=80, deadline=None)
    def test_hit_miss_classification_matches(self, stream):
        cache, ref = make_pair()
        t = 0.0
        for addr, is_write in stream:
            kind = AccessType.WRITE if is_write else AccessType.READ
            t += cache.access(Access(addr, 1, kind), t) + 10.0
            ref.access(addr, is_write)
        assert cache.stats.hits == ref.hits
        assert cache.stats.misses == ref.misses

    @given(_accesses)
    @settings(max_examples=60, deadline=None)
    def test_final_contents_match(self, stream):
        cache, ref = make_pair()
        t = 0.0
        for addr, is_write in stream:
            kind = AccessType.WRITE if is_write else AccessType.READ
            t += cache.access(Access(addr, 1, kind), t) + 10.0
            ref.access(addr, is_write)
        for addr in range(0, 4096, 64):
            assert cache.contains(addr) == ref.resident(addr), hex(addr)
            if ref.resident(addr):
                assert cache.is_dirty(addr) == ref.dirty(addr), hex(addr)

    @given(_accesses)
    @settings(max_examples=40, deadline=None)
    def test_fills_equal_misses(self, stream):
        cache, ref = make_pair()
        t = 0.0
        for addr, is_write in stream:
            kind = AccessType.WRITE if is_write else AccessType.READ
            t += cache.access(Access(addr, 1, kind), t) + 10.0
        assert cache.stats.fills == cache.stats.misses

    @given(_accesses)
    @settings(max_examples=40, deadline=None)
    def test_resident_never_exceeds_capacity(self, stream):
        cache, ref = make_pair()
        t = 0.0
        for addr, is_write in stream:
            kind = AccessType.WRITE if is_write else AccessType.READ
            t += cache.access(Access(addr, 1, kind), t) + 10.0
            assert cache.resident_lines <= 8  # 4 sets x 2 ways

    @given(_accesses)
    @settings(max_examples=40, deadline=None)
    def test_latencies_positive_and_time_monotonic(self, stream):
        cache, _ = make_pair()
        t = 0.0
        for addr, is_write in stream:
            kind = AccessType.WRITE if is_write else AccessType.READ
            latency = cache.access(Access(addr, 1, kind), t)
            assert latency >= 1.0
            t += latency
