"""Unit-conversion helpers."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    BITS_PER_BYTE,
    bits_to_bytes,
    cycles_to_ns,
    f2_to_mm2,
    is_power_of_two,
    kbit,
    kib,
    log2_exact,
    mib,
    ns_to_cycles,
)


class TestNsToCycles:
    def test_sram_read_is_one_cycle_at_1ghz(self):
        assert ns_to_cycles(0.787) == 1

    def test_stt_mram_read_is_four_cycles_at_1ghz(self):
        assert ns_to_cycles(3.37) == 4

    def test_stt_mram_write_is_two_cycles_at_1ghz(self):
        assert ns_to_cycles(1.86) == 2

    def test_exact_cycle_boundary(self):
        assert ns_to_cycles(3.0) == 3

    def test_zero_latency_is_zero_cycles(self):
        assert ns_to_cycles(0.0) == 0

    def test_tiny_latency_rounds_up_to_one(self):
        assert ns_to_cycles(0.001) == 1

    def test_other_clock(self):
        # 2 GHz: a 0.787 ns access needs 2 cycles of 0.5 ns.
        assert ns_to_cycles(0.787, clock_hz=2e9) == 2

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            ns_to_cycles(-1.0)

    def test_bad_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            ns_to_cycles(1.0, clock_hz=0)


class TestCyclesToNs:
    def test_roundtrip_at_1ghz(self):
        assert cycles_to_ns(4) == pytest.approx(4.0)

    def test_other_clock(self):
        assert cycles_to_ns(4, clock_hz=2e9) == pytest.approx(2.0)

    def test_bad_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            cycles_to_ns(1, clock_hz=-1)


class TestCapacityHelpers:
    def test_kib(self):
        assert kib(64) == 65536

    def test_mib(self):
        assert mib(2) == 2 * 1024 * 1024

    def test_kbit(self):
        assert kbit(2) == 2048

    def test_bits_to_bytes(self):
        assert bits_to_bytes(512) == 64

    def test_bits_to_bytes_rejects_partial(self):
        with pytest.raises(ConfigurationError):
            bits_to_bytes(12)


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 1024])
    def test_accepts_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 100])
    def test_rejects_non_powers(self, value):
        assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_exact(64) == 6

    def test_log2_exact_rejects(self):
        with pytest.raises(ConfigurationError):
            log2_exact(3)


class TestAreaConversion:
    def test_known_value(self):
        # 1 bit of 1 F^2 at 1000 nm = (1e-3 mm)^2 = 1e-6 mm^2.
        assert f2_to_mm2(1.0, 1, 1000.0) == pytest.approx(1e-6)

    def test_scales_linearly_with_bits(self):
        one = f2_to_mm2(42.0, 1, 32.0)
        many = f2_to_mm2(42.0, 1000, 32.0)
        assert many == pytest.approx(1000 * one)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            f2_to_mm2(0, 8, 32.0)

    def test_bits_per_byte_constant(self):
        assert BITS_PER_BYTE == 8
