"""The Enhanced-MSHR comparison front-end."""

import pytest

from repro.core.emshr import EMSHRFrontend
from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mainmem import MainMemory


def make_frontend(total_bits=2048, mem_latency=100.0):
    backing = Cache(
        CacheConfig(
            name="dl1",
            capacity_bytes=4096,
            associativity=2,
            line_bytes=64,
            read_hit_cycles=4,
            write_hit_cycles=2,
            banks=4,
        ),
        MainMemory(latency_cycles=mem_latency, transfer_cycles=0.0),
    )
    return EMSHRFrontend(backing, total_bits=total_bits)


class TestStructuralLimitation:
    def test_dl1_read_hits_pay_full_nvm_latency(self):
        """The EMSHR only captures lines that *missed* in the DL1: a
        DL1-resident line always costs the 4-cycle array read — the
        paper's Figure 8 argument."""
        fe = make_frontend()
        fe.read(0, 4, 0.0)  # miss: lingers in an entry
        # Flush the entry file with four other misses (FIFO).
        for i in range(1, 5):
            fe.read(i * 64, 4, i * 1000.0)
        latency = fe.read(0, 4, 10000.0)  # DL1 hit now, entry long gone
        assert latency == 4.0

    def test_prefetch_of_dl1_resident_line_is_useless(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        fe.prefetch(0, 5000.0)
        assert fe.stats.prefetches_useless == 1


class TestLingering:
    def test_lingering_entry_serves_at_buffer_speed(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)  # miss allocates an entry
        assert fe.read(8, 4, 1000.0) == 1.0
        assert fe.stats.buffer_read_hits == 1

    def test_early_reuse_waits_for_fill(self):
        fe = make_frontend(mem_latency=100.0)
        fe.read(0, 4, 0.0)
        latency = fe.read(0, 4, 50.0)
        assert 1.0 < latency <= 101.0

    def test_fifo_reclaim(self):
        fe = make_frontend(total_bits=2048)  # 4 entries
        for i in range(5):
            fe.read(i * 64, 4, i * 1000.0)
        # Entry 0 was reclaimed; 1-4 linger.
        assert fe.read(64, 4, 10000.0) == 1.0
        assert fe.read(0, 4, 20000.0) == 4.0  # DL1 hit, no entry

    def test_write_hit_in_entry(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        assert fe.write(0, 4, 1000.0) == 1.0

    def test_dirty_entry_written_back_on_reclaim(self):
        fe = make_frontend(total_bits=2048)
        fe.read(0, 4, 0.0)
        fe.write(0, 4, 500.0)
        for i in range(1, 5):
            fe.read(i * 64, 4, i * 1000.0)
        assert fe.stats.buffer_writebacks == 1
        assert fe.backing.is_dirty(0)

    def test_write_miss_goes_to_array(self):
        fe = make_frontend()
        fe.write(0, 4, 0.0)
        assert fe.backing.is_dirty(0)
        assert fe.stats.buffer_write_misses == 1

    def test_prefetch_of_missing_line_allocates(self):
        fe = make_frontend()
        fe.prefetch(0, 0.0)
        assert fe.read(0, 4, 5000.0) == 1.0

    def test_reset(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        fe.reset()
        assert fe.read(0, 4, 0.0) > 4.0  # cold again

    def test_rejects_sub_line_capacity(self):
        with pytest.raises(ConfigurationError):
            make_frontend(total_bits=100)


class TestPlainFrontend:
    def test_forwards_reads(self):
        from repro.core.dropin import PlainFrontend

        backing = Cache(
            CacheConfig(
                name="dl1",
                capacity_bytes=4096,
                associativity=2,
                line_bytes=64,
                read_hit_cycles=4,
                write_hit_cycles=2,
            ),
            MainMemory(latency_cycles=100.0, transfer_cycles=0.0),
        )
        fe = PlainFrontend(backing)
        fe.read(0, 4, 0.0)
        assert fe.read(0, 4, 1000.0) == 4.0
        fe.write(0, 4, 2000.0)
        assert backing.is_dirty(0)
        fe.prefetch(64, 3000.0)
        assert fe.stats.prefetches_issued == 1
        assert fe.read(64, 4, 9000.0) == 4.0  # prefetched, ordinary hit
