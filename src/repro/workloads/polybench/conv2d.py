"""2-D convolution (3x3 kernel over a single-channel image).

Extra kernel (beyond PolyBench): the motivating embedded workload class
the paper's introduction gestures at ("heavy, robust or data intensive
applications").  The 3x3 weights are loop-invariant across the two inner
image loops (register-allocated), while the image rows stream through
three neighbour lines at once — VWB-friendly, and heavily
vectorizable.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"h": 40, "w": 40}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the conv2d program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    h, w = dims["h"], dims["w"]
    i, j = Var("i"), Var("j")
    image = Array("image", (h, w))
    out = Array("out", (h, w))
    weights = Array("weights", (3, 3))
    reads = [weights[r, c] for r in range(3) for c in range(3)]
    reads += [image[i + r - 1, j + c - 1] for r in range(3) for c in range(3)]
    body = [
        loop(
            i,
            h - 1,
            [
                loop(
                    j,
                    w - 1,
                    [stmt(reads=reads, writes=[out[i, j]], flops=17, label="conv")],
                    lower=1,
                )
            ],
            lower=1,
        )
    ]
    return Program("conv2d", body)
