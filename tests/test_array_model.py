"""Analytic array model: anchoring, scaling trends, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.tech.array_model import ArrayGeometry, estimate_array
from repro.tech.params import SRAM_32NM_HP, STT_MRAM_32NM
from repro.units import kib

REFERENCE = ArrayGeometry(capacity_bytes=kib(64), associativity=2, line_bytes=64)


class TestAnchoring:
    """A 64 KB 2-way single-bank array reproduces Table I exactly."""

    @pytest.mark.parametrize("tech", [SRAM_32NM_HP, STT_MRAM_32NM])
    def test_read_latency_anchored(self, tech):
        est = estimate_array(tech, REFERENCE)
        assert est.read_latency_ns == pytest.approx(tech.read_latency_ns)

    @pytest.mark.parametrize("tech", [SRAM_32NM_HP, STT_MRAM_32NM])
    def test_write_latency_anchored(self, tech):
        est = estimate_array(tech, REFERENCE)
        assert est.write_latency_ns == pytest.approx(tech.write_latency_ns)

    @pytest.mark.parametrize("tech", [SRAM_32NM_HP, STT_MRAM_32NM])
    def test_leakage_anchored(self, tech):
        est = estimate_array(tech, REFERENCE)
        assert est.leakage_mw == pytest.approx(tech.leakage_mw)


class TestScalingTrends:
    def test_smaller_array_is_faster(self):
        small = ArrayGeometry(capacity_bytes=kib(8), line_bytes=64)
        est_small = estimate_array(STT_MRAM_32NM, small)
        est_ref = estimate_array(STT_MRAM_32NM, REFERENCE)
        assert est_small.read_latency_ns < est_ref.read_latency_ns

    def test_banking_reduces_latency(self):
        banked = ArrayGeometry(capacity_bytes=kib(64), associativity=2, line_bytes=64, banks=4)
        est_banked = estimate_array(STT_MRAM_32NM, banked)
        est_ref = estimate_array(STT_MRAM_32NM, REFERENCE)
        assert est_banked.read_latency_ns < est_ref.read_latency_ns

    def test_leakage_proportional_to_capacity(self):
        double = ArrayGeometry(capacity_bytes=kib(128), associativity=2, line_bytes=64)
        est = estimate_array(SRAM_32NM_HP, double)
        assert est.leakage_mw == pytest.approx(2 * SRAM_32NM_HP.leakage_mw)

    def test_banking_adds_area(self):
        banked = ArrayGeometry(capacity_bytes=kib(64), associativity=2, line_bytes=64, banks=8)
        est_banked = estimate_array(STT_MRAM_32NM, banked)
        est_ref = estimate_array(STT_MRAM_32NM, REFERENCE)
        assert est_banked.area_mm2 > est_ref.area_mm2

    def test_associativity_adds_area(self):
        wide = ArrayGeometry(capacity_bytes=kib(64), associativity=16, line_bytes=64)
        est_wide = estimate_array(STT_MRAM_32NM, wide)
        est_ref = estimate_array(STT_MRAM_32NM, REFERENCE)
        assert est_wide.area_mm2 > est_ref.area_mm2

    def test_stt_array_smaller_than_sram(self):
        sram = estimate_array(SRAM_32NM_HP, REFERENCE)
        stt = estimate_array(STT_MRAM_32NM, REFERENCE)
        assert stt.area_mm2 < sram.area_mm2 / 3.0

    def test_wide_line_costs_more_energy(self):
        wide = ArrayGeometry(capacity_bytes=kib(64), associativity=2, line_bytes=128)
        est_wide = estimate_array(STT_MRAM_32NM, wide)
        est_ref = estimate_array(STT_MRAM_32NM, REFERENCE)
        assert est_wide.read_energy_pj > est_ref.read_energy_pj

    def test_nvm_write_energy_exceeds_read(self):
        est = estimate_array(STT_MRAM_32NM, REFERENCE)
        assert est.write_energy_pj > est.read_energy_pj


class TestGeometryValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            ArrayGeometry(capacity_bytes=0)

    def test_rejects_non_power_of_two_banks(self):
        with pytest.raises(ConfigurationError):
            ArrayGeometry(capacity_bytes=1024, banks=3)

    def test_rejects_capacity_not_divisible_by_line(self):
        with pytest.raises(ConfigurationError):
            ArrayGeometry(capacity_bytes=1000, line_bytes=64)

    def test_bits(self):
        assert REFERENCE.bits == kib(64) * 8

    def test_lines(self):
        assert REFERENCE.lines == kib(64) // 64

    def test_bits_per_bank(self):
        banked = ArrayGeometry(capacity_bytes=kib(64), line_bytes=64, banks=4)
        assert banked.bits_per_bank == kib(64) * 8 // 4

    def test_summary_mentions_technology(self):
        est = estimate_array(STT_MRAM_32NM, REFERENCE)
        assert "STT-MRAM" in est.summary()
